package syslogmsg

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Wire-format parsing. Routers transmit syslog to collectors using the
// syslog protocol (the paper's reference [6]); the payload formats seen in
// practice are BSD-style RFC 3164 and the newer RFC 5424. Both are parsed
// into the same Message model the rest of the pipeline consumes. The
// router-private line format (ParseLine) remains the storage format.

// ParseWire parses one syslog wire datagram/line in whichever format it
// uses: RFC 5424 (leading "<pri>1 "), RFC 3164 (leading "<pri>" + BSD
// timestamp), or the repository's own line format as a fallback.
func ParseWire(line string, index uint64, year int) (Message, error) {
	if strings.HasPrefix(line, "<") {
		if i := strings.IndexByte(line, '>'); i > 0 && i <= 4 {
			rest := line[i+1:]
			if strings.HasPrefix(rest, "1 ") {
				return parseRFC5424(line, index)
			}
			return parseRFC3164(line, index, year)
		}
	}
	return ParseLine(line, index)
}

// parsePri extracts and validates the <pri> prefix, returning facility*8+severity
// and the remainder.
func parsePri(line string) (pri int, rest string, err error) {
	if !strings.HasPrefix(line, "<") {
		return 0, "", fmt.Errorf("syslogmsg: missing <pri> in %q", line)
	}
	end := strings.IndexByte(line, '>')
	if end < 2 || end > 4 {
		return 0, "", fmt.Errorf("syslogmsg: malformed <pri> in %q", line)
	}
	pri, err = strconv.Atoi(line[1:end])
	if err != nil || pri < 0 || pri > 191 {
		return 0, "", fmt.Errorf("syslogmsg: invalid <pri> %q", line[1:end])
	}
	return pri, line[end+1:], nil
}

// rfc3164Months maps BSD timestamp month names.
var rfc3164Months = map[string]time.Month{
	"Jan": time.January, "Feb": time.February, "Mar": time.March,
	"Apr": time.April, "May": time.May, "Jun": time.June,
	"Jul": time.July, "Aug": time.August, "Sep": time.September,
	"Oct": time.October, "Nov": time.November, "Dec": time.December,
}

// parseRFC3164 parses "<pri>Mmm dd hh:mm:ss host tag: content". BSD
// timestamps carry no year; the caller supplies one (collectors use the
// current year). The router message type is recovered from the tag, e.g.
// "%LINK-3-UPDOWN:" or "LINK-3-UPDOWN:".
func parseRFC3164(line string, index uint64, year int) (Message, error) {
	_, rest, err := parsePri(line)
	if err != nil {
		return Message{}, err
	}
	// Timestamp: "Mmm dd hh:mm:ss " (dd may be space-padded).
	if len(rest) < 16 {
		return Message{}, fmt.Errorf("syslogmsg: short RFC3164 line %q", line)
	}
	mon, ok := rfc3164Months[rest[0:3]]
	if !ok {
		return Message{}, fmt.Errorf("syslogmsg: bad month in %q", line)
	}
	dayStr := strings.TrimSpace(rest[4:6])
	day, err := strconv.Atoi(dayStr)
	if err != nil || day < 1 || day > 31 {
		return Message{}, fmt.Errorf("syslogmsg: bad day in %q", line)
	}
	clock := rest[7:15]
	hh, errH := strconv.Atoi(clock[0:2])
	mm, errM := strconv.Atoi(clock[3:5])
	ss, errS := strconv.Atoi(clock[6:8])
	if errH != nil || errM != nil || errS != nil || clock[2] != ':' || clock[5] != ':' {
		return Message{}, fmt.Errorf("syslogmsg: bad clock in %q", line)
	}
	if year == 0 {
		year = time.Now().UTC().Year()
	}
	ts := time.Date(year, mon, day, hh, mm, ss, 0, time.UTC)

	fields := strings.Fields(rest[15:])
	if len(fields) < 2 {
		return Message{}, fmt.Errorf("syslogmsg: RFC3164 line missing host/tag: %q", line)
	}
	host := fields[0]
	tag := fields[1]
	detailStart := strings.Index(rest[15:], tag) + len(tag)
	detail := strings.TrimSpace(rest[15:][detailStart:])
	code := strings.TrimSuffix(strings.TrimPrefix(tag, "%"), ":")
	if code == "" {
		return Message{}, fmt.Errorf("syslogmsg: empty tag in %q", line)
	}
	return Message{Index: index, Time: ts, Router: host, Code: code, Detail: detail}, nil
}

// parseRFC5424 parses
// "<pri>1 TIMESTAMP HOSTNAME APP-NAME PROCID MSGID SD MSG", mapping
// MSGID to the error code and MSG to the detail. "-" fields are nil values
// per the RFC.
func parseRFC5424(line string, index uint64) (Message, error) {
	_, rest, err := parsePri(line)
	if err != nil {
		return Message{}, err
	}
	if !strings.HasPrefix(rest, "1 ") {
		return Message{}, fmt.Errorf("syslogmsg: unsupported syslog version in %q", line)
	}
	rest = rest[2:]
	// TIMESTAMP HOSTNAME APP PROCID MSGID
	var fields [5]string
	for i := 0; i < 5; i++ {
		j := strings.IndexByte(rest, ' ')
		if j <= 0 { // empty header fields (double spaces) are malformed
			return Message{}, fmt.Errorf("syslogmsg: truncated RFC5424 header in %q", line)
		}
		fields[i] = rest[:j]
		rest = rest[j+1:]
	}
	ts, err := time.Parse(time.RFC3339, fields[0])
	if err != nil {
		return Message{}, fmt.Errorf("syslogmsg: bad RFC5424 timestamp %q: %w", fields[0], err)
	}
	host, msgid := fields[1], fields[4]
	if host == "-" {
		return Message{}, fmt.Errorf("syslogmsg: nil hostname in %q", line)
	}
	// Structured data: "-" or one-or-more [ ... ] blocks (skipped; router
	// syslogs carry their payload in MSG).
	if strings.HasPrefix(rest, "-") {
		rest = strings.TrimPrefix(rest, "-")
		rest = strings.TrimPrefix(rest, " ")
	} else {
		for strings.HasPrefix(rest, "[") {
			end := strings.IndexByte(rest, ']')
			if end < 0 {
				return Message{}, fmt.Errorf("syslogmsg: unterminated structured data in %q", line)
			}
			rest = rest[end+1:]
		}
		rest = strings.TrimPrefix(rest, " ")
	}
	code := msgid
	detail := rest
	if code == "-" {
		// No MSGID: fall back to the first token of MSG as the code, the
		// common shape for routers that put "LINK-3-UPDOWN: ..." in MSG.
		if j := strings.IndexByte(detail, ' '); j > 0 {
			code = strings.TrimSuffix(strings.TrimPrefix(detail[:j], "%"), ":")
			detail = strings.TrimSpace(detail[j+1:])
		}
	}
	if code == "" || code == "-" {
		return Message{}, fmt.Errorf("syslogmsg: no message type in %q", line)
	}
	return Message{
		Index:  index,
		Time:   ts.UTC().Truncate(time.Second),
		Router: host,
		Code:   code,
		Detail: detail,
	}, nil
}

// FormatRFC3164 renders a message in BSD syslog form with the given pri
// value, for test fixtures and interop tooling.
func FormatRFC3164(m *Message, pri int) string {
	return fmt.Sprintf("<%d>%s %s %%%s: %s",
		pri, m.Time.Format("Jan _2 15:04:05"), m.Router, m.Code, m.Detail)
}

// FormatRFC5424 renders a message in RFC 5424 form with the given pri.
func FormatRFC5424(m *Message, pri int) string {
	return fmt.Sprintf("<%d>1 %s %s router - %s - %s",
		pri, m.Time.UTC().Format(time.RFC3339), m.Router, m.Code, m.Detail)
}
