package syslogmsg

import (
	"strings"
	"testing"
	"time"
)

func TestParseRFC3164(t *testing.T) {
	line := "<189>Jan 10 00:00:15 r1 %LINK-3-UPDOWN: Interface Serial13/0.10/20:0, changed state to down"
	m, err := ParseWire(line, 3, 2010)
	if err != nil {
		t.Fatal(err)
	}
	if m.Index != 3 || m.Router != "r1" || m.Code != "LINK-3-UPDOWN" {
		t.Fatalf("parsed %+v", m)
	}
	want := time.Date(2010, 1, 10, 0, 0, 15, 0, time.UTC)
	if !m.Time.Equal(want) {
		t.Fatalf("Time = %v, want %v", m.Time, want)
	}
	if m.Detail != "Interface Serial13/0.10/20:0, changed state to down" {
		t.Fatalf("Detail = %q", m.Detail)
	}
}

func TestParseRFC3164SpacePaddedDay(t *testing.T) {
	line := "<189>Feb  2 13:01:02 ra SNMP-WARNING-linkDown: Interface 0/0/1 is not operational"
	m, err := ParseWire(line, 0, 2010)
	if err != nil {
		t.Fatal(err)
	}
	if m.Time.Day() != 2 || m.Time.Month() != time.February {
		t.Fatalf("Time = %v", m.Time)
	}
	if m.Code != "SNMP-WARNING-linkDown" {
		t.Fatalf("Code = %q", m.Code)
	}
}

func TestParseRFC3164DefaultYear(t *testing.T) {
	line := "<189>Mar 15 08:30:00 r9 %SYS-5-CONFIG_I: Configured from console"
	m, err := ParseWire(line, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Time.Year() != time.Now().UTC().Year() {
		t.Fatalf("default year = %d", m.Time.Year())
	}
}

func TestParseRFC3164Errors(t *testing.T) {
	cases := []string{
		"<189>Xxx 10 00:00:15 r1 %A-1-B: d", // bad month
		"<189>Jan 99 00:00:15 r1 %A-1-B: d", // bad day
		"<189>Jan 10 00-00-15 r1 %A-1-B: d", // bad clock
		"<189>Jan 10 00:00:15",              // missing host/tag
		"<999>Jan 10 00:00:15 r1 %A-1-B: d", // pri out of range
	}
	for _, c := range cases {
		if _, err := ParseWire(c, 0, 2010); err == nil {
			t.Errorf("ParseWire(%q) succeeded", c)
		}
	}
}

func TestParseRFC5424WithMsgID(t *testing.T) {
	line := "<189>1 2010-01-10T00:00:15Z r5 router - LINK-3-UPDOWN - Interface Serial2/0.10/2:0, changed state to down"
	m, err := ParseWire(line, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Router != "r5" || m.Code != "LINK-3-UPDOWN" {
		t.Fatalf("parsed %+v", m)
	}
	if !m.Time.Equal(time.Date(2010, 1, 10, 0, 0, 15, 0, time.UTC)) {
		t.Fatalf("Time = %v", m.Time)
	}
	if m.Detail != "Interface Serial2/0.10/2:0, changed state to down" {
		t.Fatalf("Detail = %q", m.Detail)
	}
}

func TestParseRFC5424NilMsgIDFallsBackToTag(t *testing.T) {
	line := "<189>1 2010-01-10T00:00:15Z rb router - - - SVCMGR-MAJOR-sapPortStateChangeProcessed: The status of all affected SAPs on port 1/1/1 has been updated"
	m, err := ParseWire(line, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Code != "SVCMGR-MAJOR-sapPortStateChangeProcessed" {
		t.Fatalf("Code = %q", m.Code)
	}
	if !strings.HasPrefix(m.Detail, "The status") {
		t.Fatalf("Detail = %q", m.Detail)
	}
}

func TestParseRFC5424StructuredData(t *testing.T) {
	line := `<189>1 2010-01-10T00:00:15Z r5 router - BGP-5-ADJCHANGE [meta seq="42"][origin ip="10.0.0.1"] neighbor 192.168.0.2 vpn vrf 1000:1001 Up`
	m, err := ParseWire(line, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Code != "BGP-5-ADJCHANGE" || !strings.HasPrefix(m.Detail, "neighbor") {
		t.Fatalf("parsed %+v", m)
	}
}

func TestParseRFC5424TimezoneNormalized(t *testing.T) {
	line := "<189>1 2010-01-10T05:00:15+05:00 r5 router - X-1-Y - detail"
	m, err := ParseWire(line, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Time.Equal(time.Date(2010, 1, 10, 0, 0, 15, 0, time.UTC)) {
		t.Fatalf("Time = %v, want normalized UTC", m.Time)
	}
}

func TestParseRFC5424Errors(t *testing.T) {
	cases := []string{
		"<189>1 not-a-time r5 a b c - msg",
		"<189>1 2010-01-10T00:00:15Z - a b C - msg",                  // nil hostname
		"<189>1 2010-01-10T00:00:15Z",                                // truncated
		"<189>1 2010-01-10T00:00:15Z r5 a b X-1-Y [unterminated msg", // bad SD
	}
	for _, c := range cases {
		if _, err := ParseWire(c, 0, 0); err == nil {
			t.Errorf("ParseWire(%q) succeeded", c)
		}
	}
}

func TestParseWireFallsBackToLineFormat(t *testing.T) {
	line := "2010-01-10 00:00:15|r1|LINK-3-UPDOWN|Interface Serial1/0, changed state to down"
	m, err := ParseWire(line, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Router != "r1" || m.Index != 5 {
		t.Fatalf("parsed %+v", m)
	}
}

func TestWireRoundTripRFC3164(t *testing.T) {
	orig := Message{
		Time:   time.Date(2010, 1, 10, 0, 0, 15, 0, time.UTC),
		Router: "r1", Code: "LINK-3-UPDOWN",
		Detail: "Interface Serial1/0, changed state to down",
	}
	wire := FormatRFC3164(&orig, 189)
	back, err := ParseWire(wire, 0, 2010)
	if err != nil {
		t.Fatalf("%v (wire %q)", err, wire)
	}
	if back.Router != orig.Router || back.Code != orig.Code || back.Detail != orig.Detail || !back.Time.Equal(orig.Time) {
		t.Fatalf("round trip: %+v != %+v", back, orig)
	}
}

func TestWireRoundTripRFC5424(t *testing.T) {
	orig := Message{
		Time:   time.Date(2010, 1, 10, 0, 0, 15, 0, time.UTC),
		Router: "rb", Code: "SNMP-WARNING-linkDown",
		Detail: "Interface 0/0/1 is not operational",
	}
	wire := FormatRFC5424(&orig, 28)
	back, err := ParseWire(wire, 0, 0)
	if err != nil {
		t.Fatalf("%v (wire %q)", err, wire)
	}
	if back.Router != orig.Router || back.Code != orig.Code || back.Detail != orig.Detail || !back.Time.Equal(orig.Time) {
		t.Fatalf("round trip: %+v != %+v", back, orig)
	}
}
