package syslogmsg

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func streamText(router string, times ...int) string {
	var b strings.Builder
	base := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	for _, s := range times {
		m := Message{Time: base.Add(time.Duration(s) * time.Second), Router: router, Code: "A-1-B", Detail: "d"}
		b.WriteString(m.Format())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestMergeReaders(t *testing.T) {
	a := streamText("r1", 0, 10, 20)
	b := streamText("r2", 5, 15, 25)
	c := streamText("r3", 1)
	merged, err := MergeReaders(strings.NewReader(a), strings.NewReader(b), strings.NewReader(c))
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 7 {
		t.Fatalf("merged = %d messages", len(merged))
	}
	for i := range merged {
		if merged[i].Index != uint64(i) {
			t.Fatalf("index %d at position %d", merged[i].Index, i)
		}
		if i > 0 && merged[i].Time.Before(merged[i-1].Time) {
			t.Fatalf("not time-sorted at %d", i)
		}
	}
	wantRouters := []string{"r1", "r3", "r2", "r1", "r2", "r1", "r2"}
	for i, w := range wantRouters {
		if merged[i].Router != w {
			t.Fatalf("position %d router %q, want %q", i, merged[i].Router, w)
		}
	}
}

func TestMergeReadersUnsortedInput(t *testing.T) {
	// A stream with internal disorder is sorted before merging.
	base := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	var b strings.Builder
	for _, s := range []int{20, 0, 10} {
		m := Message{Time: base.Add(time.Duration(s) * time.Second), Router: "r1", Code: "A-1-B", Detail: "d"}
		b.WriteString(m.Format() + "\n")
	}
	merged, err := MergeReaders(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Time.Before(merged[i-1].Time) {
			t.Fatal("disordered stream not sorted")
		}
	}
}

func TestMergeReadersEmpty(t *testing.T) {
	merged, err := MergeReaders(strings.NewReader(""), strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 0 {
		t.Fatalf("merged = %d", len(merged))
	}
}

// syntheticStreams builds k per-router sorted streams of n messages each,
// interleaved in time so the merge actually alternates sources.
func syntheticStreams(k, n int) [][]Message {
	base := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	streams := make([][]Message, k)
	for i := range streams {
		msgs := make([]Message, n)
		for j := range msgs {
			msgs[j] = Message{
				Index:  uint64(j),
				Time:   base.Add(time.Duration(j*k+i) * time.Second),
				Router: "r" + string(rune('a'+i)),
				Code:   "A-1-B",
				Detail: "d",
			}
		}
		streams[i] = msgs
	}
	return streams
}

// TestMergeSortedAllocs is the allocation guard for the typed merge heap:
// the k-way merge must allocate a small constant (heap, cursor slice,
// output slice) — not per message, as the old container/heap version did
// by boxing every Push/Pop through an interface.
func TestMergeSortedAllocs(t *testing.T) {
	streams := syntheticStreams(4, 512)
	allocs := testing.AllocsPerRun(10, func() {
		out := mergeSorted(streams)
		if len(out) != 4*512 {
			t.Fatalf("merged %d messages", len(out))
		}
	})
	if allocs > 4 {
		t.Errorf("mergeSorted allocated %.1f times for %d messages, want constant <= 4", allocs, 4*512)
	}
}

func BenchmarkMergeSorted(b *testing.B) {
	streams := syntheticStreams(8, 2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mergeSorted(streams)
	}
}

func TestReadGlob(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "r1.log"), []byte(streamText("r1", 0, 10)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "r2.log"), []byte(streamText("r2", 5)), 0o644); err != nil {
		t.Fatal(err)
	}
	merged, err := ReadGlob(filepath.Join(dir, "*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 3 || merged[1].Router != "r2" {
		t.Fatalf("merged = %+v", merged)
	}
	if _, err := ReadGlob(filepath.Join(dir, "*.nope")); err == nil {
		t.Fatal("empty glob accepted")
	}
}
