package syslogmsg

import (
	"testing"
	"time"
)

func storeMsgs(t *testing.T, n int, base uint64) []Message {
	t.Helper()
	t0 := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	out := make([]Message, n)
	for i := range out {
		out[i] = Message{
			Index:  base + uint64(i),
			Time:   t0.Add(time.Duration(i) * time.Minute),
			Router: "r1", Code: "A-1-B", Detail: "d",
		}
	}
	return out
}

func TestStoreGet(t *testing.T) {
	msgs := storeMsgs(t, 10, 100)
	s, err := NewStore(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	m, ok := s.Get(105)
	if !ok || m.Index != 105 {
		t.Fatalf("Get(105) = %v, %v", m, ok)
	}
	if _, ok := s.Get(99); ok {
		t.Fatal("Get below base succeeded")
	}
	if _, ok := s.Get(110); ok {
		t.Fatal("Get past end succeeded")
	}
}

func TestStoreGetAllSkipsUnknown(t *testing.T) {
	s, err := NewStore(storeMsgs(t, 5, 0))
	if err != nil {
		t.Fatal(err)
	}
	got := s.GetAll([]uint64{0, 3, 99, 4})
	if len(got) != 3 {
		t.Fatalf("GetAll = %d messages", len(got))
	}
	if got[1].Index != 3 {
		t.Fatalf("order lost: %v", got)
	}
}

func TestStoreBetween(t *testing.T) {
	s, err := NewStore(storeMsgs(t, 10, 0))
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	got := s.Between(t0.Add(2*time.Minute), t0.Add(5*time.Minute))
	if len(got) != 4 || got[0].Index != 2 || got[3].Index != 5 {
		t.Fatalf("Between = %v", got)
	}
	if got := s.Between(t0.Add(time.Hour), t0.Add(2*time.Hour)); got != nil {
		t.Fatalf("out-of-range Between = %v", got)
	}
	if got := s.Between(t0.Add(5*time.Minute), t0.Add(2*time.Minute)); got != nil {
		t.Fatalf("inverted Between = %v", got)
	}
}

func TestStoreValidation(t *testing.T) {
	msgs := storeMsgs(t, 5, 0)
	msgs[3].Index = 7 // gap
	if _, err := NewStore(msgs); err == nil {
		t.Fatal("gap accepted")
	}
	msgs = storeMsgs(t, 5, 0)
	msgs[2].Time = msgs[2].Time.Add(-time.Hour)
	if _, err := NewStore(msgs); err == nil {
		t.Fatal("time disorder accepted")
	}
	s, err := NewStore(nil)
	if err != nil || s.Len() != 0 {
		t.Fatalf("empty store: %v, len %d", err, s.Len())
	}
	if _, ok := s.Get(0); ok {
		t.Fatal("empty store Get succeeded")
	}
}
