package syslogmsg

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

func mustTime(t *testing.T, s string) time.Time {
	t.Helper()
	ts, err := time.Parse(TimeLayout, s)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestParseLineRoundTrip(t *testing.T) {
	line := "2010-01-10 00:00:15|r1|LINK-3-UPDOWN|Interface Serial13/0.10/20:0, changed state to down"
	m, err := ParseLine(line, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Index != 7 {
		t.Fatalf("Index = %d, want 7", m.Index)
	}
	if m.Router != "r1" || m.Code != "LINK-3-UPDOWN" {
		t.Fatalf("parsed %+v", m)
	}
	if !m.Time.Equal(mustTime(t, "2010-01-10 00:00:15")) {
		t.Fatalf("Time = %v", m.Time)
	}
	if m.Format() != line {
		t.Fatalf("round trip:\n got %q\nwant %q", m.Format(), line)
	}
}

func TestParseLineDetailMayContainPipes(t *testing.T) {
	line := "2010-01-10 00:00:15|r1|SYS-5-CONFIG_I|Configured from console | by admin"
	m, err := ParseLine(line, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Detail != "Configured from console | by admin" {
		t.Fatalf("Detail = %q", m.Detail)
	}
}

func TestParseLineErrors(t *testing.T) {
	cases := []string{
		"",
		"2010-01-10 00:00:15|r1|LINK-3-UPDOWN", // 3 fields
		"not-a-time|r1|LINK-3-UPDOWN|detail",   // bad timestamp
		"2010-01-10 00:00:15||LINK-3-UPDOWN|detail", // empty router
		"2010-01-10 00:00:15|r1||detail",            // empty code
	}
	for _, c := range cases {
		if _, err := ParseLine(c, 0); err == nil {
			t.Errorf("ParseLine(%q) succeeded, want error", c)
		}
	}
}

func TestParseCodeV1(t *testing.T) {
	ci := ParseCode("LINEPROTO-5-UPDOWN")
	if ci.Vendor != VendorV1 || ci.Facility != "LINEPROTO" || ci.Severity != 5 || ci.Mnemonic != "UPDOWN" {
		t.Fatalf("got %+v", ci)
	}
	ci = ParseCode("SYS-1-CPURISINGTHRESHOLD")
	if ci.Vendor != VendorV1 || ci.Severity != 1 {
		t.Fatalf("got %+v", ci)
	}
}

func TestParseCodeV2(t *testing.T) {
	ci := ParseCode("SNMP-WARNING-linkDown")
	if ci.Vendor != VendorV2 || ci.Facility != "SNMP" || ci.Mnemonic != "linkDown" {
		t.Fatalf("got %+v", ci)
	}
	if ci.Severity != severityWords["WARNING"] {
		t.Fatalf("severity = %d", ci.Severity)
	}
	ci = ParseCode("SVCMGR-MAJOR-sapPortStateChangeProcessed")
	if ci.Vendor != VendorV2 || ci.Facility != "SVCMGR" {
		t.Fatalf("got %+v", ci)
	}
}

func TestParseCodeUnknown(t *testing.T) {
	for _, c := range []string{"WEIRD", "A-B", "A-9-B", "A-NOTASEV-B-C-D-extra"} {
		ci := ParseCode(c)
		if c == "A-NOTASEV-B-C-D-extra" || c == "WEIRD" || c == "A-B" {
			if ci.Vendor != VendorUnknown || ci.Severity != -1 {
				t.Errorf("ParseCode(%q) = %+v, want unknown", c, ci)
			}
		}
	}
	// Severity 9 is out of the 0-7 V1 range.
	if ci := ParseCode("A-9-B"); ci.Vendor != VendorUnknown {
		t.Errorf("ParseCode(A-9-B) = %+v, want unknown vendor", ci)
	}
}

func TestCodeBuilders(t *testing.T) {
	if got := V1Code("LINK", 3, "UPDOWN"); got != "LINK-3-UPDOWN" {
		t.Fatalf("V1Code = %q", got)
	}
	if got := V2Code("SNMP", "WARNING", "linkDown"); got != "SNMP-WARNING-linkDown" {
		t.Fatalf("V2Code = %q", got)
	}
	// Round trip: builder output parses back to the same parts.
	ci := ParseCode(V1Code("OSPF", 5, "ADJCHG"))
	if ci.Facility != "OSPF" || ci.Severity != 5 || ci.Mnemonic != "ADJCHG" {
		t.Fatalf("round trip failed: %+v", ci)
	}
}

func TestVendorString(t *testing.T) {
	if VendorV1.String() != "V1" || VendorV2.String() != "V2" || VendorUnknown.String() != "unknown" {
		t.Fatal("vendor names wrong")
	}
}

func TestSortByTime(t *testing.T) {
	t0 := mustTime(t, "2010-01-10 00:00:00")
	a := &Message{Time: t0, Router: "r1", Index: 0}
	b := &Message{Time: t0.Add(time.Second), Router: "r0", Index: 1}
	if !SortByTime(a, b) {
		t.Fatal("earlier timestamp should sort first")
	}
	c := &Message{Time: t0, Router: "r0", Index: 2}
	if SortByTime(a, c) {
		t.Fatal("same time: router r0 should sort before r1")
	}
	d := &Message{Time: t0, Router: "r1", Index: 5}
	if !SortByTime(a, d) {
		t.Fatal("same time and router: lower index first")
	}
}

func TestReaderReadAll(t *testing.T) {
	input := strings.Join([]string{
		"# header comment",
		"2010-01-10 00:00:00|r1|LINK-3-UPDOWN|Interface Serial1/0, changed state to down",
		"",
		"2010-01-10 00:00:01|r2|LINK-3-UPDOWN|Interface Serial2/0, changed state to down",
	}, "\n")
	msgs, err := NewReader(strings.NewReader(input)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("len = %d, want 2", len(msgs))
	}
	if msgs[0].Index != 0 || msgs[1].Index != 1 {
		t.Fatalf("indices = %d, %d", msgs[0].Index, msgs[1].Index)
	}
	if msgs[1].Router != "r2" {
		t.Fatalf("router = %q", msgs[1].Router)
	}
}

func TestReaderStrictVsLenient(t *testing.T) {
	input := "garbage line\n2010-01-10 00:00:00|r1|X-1-Y|ok\n"
	r := NewReader(strings.NewReader(input))
	if _, err := r.Read(); err == nil {
		t.Fatal("strict reader should fail on garbage")
	}

	r = NewReader(strings.NewReader(input))
	r.SetLenient(true)
	m, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if m.Code != "X-1-Y" || r.Skipped() != 1 {
		t.Fatalf("lenient read = %+v, skipped = %d", m, r.Skipped())
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	t0 := mustTime(t, "2010-01-10 00:00:00")
	in := []Message{
		{Index: 0, Time: t0, Router: "r1", Code: "LINK-3-UPDOWN", Detail: "Interface Serial1/0, changed state to down"},
		{Index: 1, Time: t0.Add(time.Minute), Router: "rb", Code: "SNMP-WARNING-linkup", Detail: "Interface 0/1/0 is operational"},
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Format() != in[i].Format() {
			t.Fatalf("message %d: %q != %q", i, out[i].Format(), in[i].Format())
		}
	}
}
