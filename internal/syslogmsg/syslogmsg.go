// Package syslogmsg defines the router syslog message model used throughout
// SyslogDigest, together with parsers and formatters for the two simulated
// vendor syntaxes from the paper's Table 1:
//
//	V1 (Cisco-like):  FACILITY-SEV-MNEMONIC with free-form detail, e.g.
//	                  "LINK-3-UPDOWN Interface Serial1/0, changed state to down"
//	V2 (ALU-like):    MODULE-SEVERITYWORD-event, e.g.
//	                  "SNMP-WARNING-linkDown Interface 0/0/1 is not operational"
//
// On the wire (and in the files this repository reads and writes) a message
// is one line:
//
//	2010-01-10 00:00:15|r1|LINK-3-UPDOWN|Interface Serial13/0, changed state to down
//
// i.e. timestamp, originating router, message type (error code) and detail,
// separated by '|'. This mirrors the minimal structure the paper identifies:
// those four fields are the only structure router syslogs reliably have.
package syslogmsg

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Vendor identifies the router vendor syntax of a message's error code.
type Vendor int

const (
	// VendorUnknown is reported when the error code matches no known syntax.
	VendorUnknown Vendor = iota
	// VendorV1 is the Cisco-like FACILITY-SEV-MNEMONIC syntax.
	VendorV1
	// VendorV2 is the ALU-like MODULE-SEVERITYWORD-event syntax.
	VendorV2
)

// String returns a short human-readable vendor name.
func (v Vendor) String() string {
	switch v {
	case VendorV1:
		return "V1"
	case VendorV2:
		return "V2"
	default:
		return "unknown"
	}
}

// TimeLayout is the timestamp layout used in serialized messages. Router
// syslog timestamps in the studied networks have one-second granularity
// (the paper sets Smin to 1s for exactly this reason).
const TimeLayout = "2006-01-02 15:04:05"

// Message is one router syslog message. Index is a monotonically increasing
// sequence number assigned by the reader/generator; it is what event digests
// reference so that raw messages can be retrieved later (the paper's "index
// field").
type Message struct {
	Index  uint64
	Time   time.Time
	Router string
	Code   string // message type / error code, e.g. "LINK-3-UPDOWN"
	Detail string // free-form detail text
}

// Key returns Code, the grouping key for template learning. (Sub-typing
// below the code is the template learner's job.)
func (m *Message) Key() string { return m.Code }

// Format renders the message as its single-line serialized form.
func (m *Message) Format() string {
	return m.Time.Format(TimeLayout) + "|" + m.Router + "|" + m.Code + "|" + m.Detail
}

// String implements fmt.Stringer.
func (m Message) String() string { return m.Format() }

// ParseLine parses one serialized message line. The index is supplied by the
// caller since it reflects stream position, not line content. The parsed
// fields re-slice line; ParseLineBytes is the allocation-free variant for
// callers holding a reusable []byte buffer.
func ParseLine(line string, index uint64) (Message, error) {
	return parseLineAny(line, index)
}

// severityWords maps V2 severity words to a numeric severity on the V1 scale
// (0 = most severe). The mapping is approximate by design: the paper argues
// vendor severities are not comparable across vendors anyway.
var severityWords = map[string]int{
	"CRITICAL": 1,
	"MAJOR":    2,
	"MINOR":    4,
	"WARNING":  5,
	"INFO":     6,
}

// CodeInfo is the decomposition of an error code into vendor syntax parts.
type CodeInfo struct {
	Vendor   Vendor
	Facility string // V1 facility or V2 module
	Severity int    // numeric severity, 0 (highest) .. 7; -1 when unknown
	Mnemonic string // V1 mnemonic or V2 event name
}

// ParseCode decomposes an error code into its vendor-specific parts. Codes
// that match neither syntax yield VendorUnknown with Severity -1 and the
// whole code as Mnemonic; such messages still flow through the pipeline
// (SyslogDigest must not depend on being able to interpret codes).
func ParseCode(code string) CodeInfo {
	parts := strings.SplitN(code, "-", 3)
	if len(parts) == 3 {
		// V1: middle part is a decimal severity 0-7.
		if sev, err := strconv.Atoi(parts[1]); err == nil && sev >= 0 && sev <= 7 {
			return CodeInfo{Vendor: VendorV1, Facility: parts[0], Severity: sev, Mnemonic: parts[2]}
		}
		// V2: middle part is a severity word.
		if sev, ok := severityWords[strings.ToUpper(parts[1])]; ok {
			return CodeInfo{Vendor: VendorV2, Facility: parts[0], Severity: sev, Mnemonic: parts[2]}
		}
	}
	return CodeInfo{Vendor: VendorUnknown, Severity: -1, Mnemonic: code}
}

// V1Code builds a V1-syntax error code.
func V1Code(facility string, severity int, mnemonic string) string {
	return fmt.Sprintf("%s-%d-%s", facility, severity, mnemonic)
}

// V2Code builds a V2-syntax error code.
func V2Code(module, severityWord, event string) string {
	return module + "-" + severityWord + "-" + event
}

// SortByTime reports whether a should sort before b in a merged stream:
// primarily by timestamp, then by router name and index for determinism.
func SortByTime(a, b *Message) bool {
	if !a.Time.Equal(b.Time) {
		return a.Time.Before(b.Time)
	}
	if a.Router != b.Router {
		return a.Router < b.Router
	}
	return a.Index < b.Index
}
