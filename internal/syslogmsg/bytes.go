package syslogmsg

import (
	"bytes"
	"fmt"
	"strings"
	"time"
)

// Zero-allocation line parsing. The serialized line format is the ingest
// hot path for both file readers and the live collector; parsing it from
// the scanner's []byte token directly avoids materializing a string per
// line. ParseLineBytes performs exactly one allocation per accepted
// message: the string holding router, code and detail (which must outlive
// the scanner buffer). ParseLine shares the same generic implementation,
// so the two paths agree on every input by construction — the fuzz targets
// verify the one place they could drift, the fast timestamp path.

// ParseLineBytes is ParseLine for a []byte line, e.g. a bufio.Scanner
// token. The returned Message copies what it keeps; line may be reused or
// overwritten by the caller immediately.
func ParseLineBytes(line []byte, index uint64) (Message, error) {
	return parseLineAny(line, index)
}

// parseLineAny is the shared parser. For string input the field string is
// a free re-slice of the caller's line (ParseLine's historical behavior);
// for []byte input it is the single per-message copy.
func parseLineAny[T ~string | ~[]byte](line T, index uint64) (Message, error) {
	// Locate the first three '|' separators without allocating a split
	// slice; the detail field keeps any further '|' bytes.
	var sep [3]int
	n := 0
	for i := 0; i < len(line); i++ {
		if line[i] == '|' {
			sep[n] = i
			n++
			if n == 3 {
				break
			}
		}
	}
	if n < 3 {
		return Message{}, fmt.Errorf("syslogmsg: malformed line (want 4 '|' fields, got %d): %q", n+1, line)
	}
	ts, ok := fastTimestamp(line[:sep[0]])
	if !ok {
		var err error
		ts, err = time.Parse(TimeLayout, string(line[:sep[0]]))
		if err != nil {
			return Message{}, fmt.Errorf("syslogmsg: bad timestamp %q: %w", line[:sep[0]], err)
		}
	}
	rest := string(line[sep[0]+1:])
	r1 := sep[1] - sep[0] - 1
	r2 := sep[2] - sep[0] - 1
	router := strings.TrimSpace(rest[:r1])
	if router == "" {
		return Message{}, fmt.Errorf("syslogmsg: empty router field in %q", line)
	}
	code := strings.TrimSpace(rest[r1+1 : r2])
	if code == "" {
		return Message{}, fmt.Errorf("syslogmsg: empty code field in %q", line)
	}
	return Message{
		Index:  index,
		Time:   ts,
		Router: router,
		Code:   code,
		Detail: rest[r2+1:],
	}, nil
}

// fastTimestamp parses a strictly regular "2006-01-02 15:04:05" timestamp
// without time.Parse. ok is false for anything irregular — wrong width,
// non-digit, out-of-range field, leap-second notation — which then falls
// back to time.Parse so edge-case acceptance and error text stay identical
// to the historical parser.
func fastTimestamp[T ~string | ~[]byte](b T) (time.Time, bool) {
	if len(b) != 19 || b[4] != '-' || b[7] != '-' || b[10] != ' ' || b[13] != ':' || b[16] != ':' {
		return time.Time{}, false
	}
	for _, i := range [...]int{0, 1, 2, 3, 5, 6, 8, 9, 11, 12, 14, 15, 17, 18} {
		if b[i] < '0' || b[i] > '9' {
			return time.Time{}, false
		}
	}
	d := func(i int) int { return int(b[i] - '0') }
	year := d(0)*1000 + d(1)*100 + d(2)*10 + d(3)
	month := d(5)*10 + d(6)
	day := d(8)*10 + d(9)
	hh := d(11)*10 + d(12)
	mm := d(14)*10 + d(15)
	ss := d(17)*10 + d(18)
	if month < 1 || month > 12 || day < 1 || day > daysIn(year, month) ||
		hh > 23 || mm > 59 || ss > 59 {
		return time.Time{}, false
	}
	return time.Date(year, time.Month(month), day, hh, mm, ss, 0, time.UTC), true
}

// daysIn returns the length of a month in the proleptic Gregorian
// calendar, matching time.Parse's day-of-month validation.
func daysIn(year, month int) int {
	switch month {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default: // February
		if year%4 == 0 && (year%100 != 0 || year%400 == 0) {
			return 29
		}
		return 28
	}
}

// ParseWireBytes is ParseWire for a []byte line. The repository line
// format — the hot path when replaying corpora through the collector — is
// parsed with ParseLineBytes; RFC 5424/3164 framings take the string
// parser (their cold path allocates the same as before).
func ParseWireBytes(line []byte, index uint64, year int) (Message, error) {
	if len(line) > 0 && line[0] == '<' {
		if i := bytes.IndexByte(line, '>'); i > 0 && i <= 4 {
			return ParseWire(string(line), index, year)
		}
	}
	return ParseLineBytes(line, index)
}
