package syslogmsg

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// Reader reads serialized messages line by line, assigning stream indices.
// Blank lines and lines starting with '#' are skipped, so dataset files can
// carry comments.
type Reader struct {
	sc      *bufio.Scanner
	next    uint64
	lenient bool
	skipped int
}

// NewReader wraps r. Buffer capacity is raised to tolerate long detail
// fields (router syslogs can exceed bufio's default 64KiB token only in
// pathological cases, but cheap insurance).
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Reader{sc: sc}
}

// SetLenient makes Read skip malformed lines instead of returning an error.
// The number of skipped lines is available via Skipped. Operational syslog
// feeds always contain some garbage; online processing must survive it.
func (r *Reader) SetLenient(v bool) { r.lenient = v }

// Skipped returns the number of malformed lines dropped in lenient mode.
func (r *Reader) Skipped() int { return r.skipped }

// Read returns the next message, or io.EOF at end of stream. Parsing works
// directly on the scanner's token ([]byte), so skipped lines cost nothing
// and accepted lines allocate only the message's own field storage.
func (r *Reader) Read() (Message, error) {
	for r.sc.Scan() {
		line := bytes.TrimRight(r.sc.Bytes(), "\r\n")
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		m, err := ParseLineBytes(line, r.next)
		if err != nil {
			if r.lenient {
				r.skipped++
				continue
			}
			return Message{}, err
		}
		r.next++
		return m, nil
	}
	if err := r.sc.Err(); err != nil {
		return Message{}, fmt.Errorf("syslogmsg: scan: %w", err)
	}
	return Message{}, io.EOF
}

// ReadAll reads the whole stream into a slice.
func (r *Reader) ReadAll() ([]Message, error) {
	var out []Message
	for {
		m, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, m)
	}
}

// Writer writes serialized messages, one per line.
type Writer struct {
	w *bufio.Writer
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write serializes one message.
func (w *Writer) Write(m *Message) error {
	if _, err := w.w.WriteString(m.Format()); err != nil {
		return err
	}
	return w.w.WriteByte('\n')
}

// Flush flushes buffered output; call it before closing the underlying file.
func (w *Writer) Flush() error { return w.w.Flush() }

// WriteAll writes a slice of messages and flushes.
func WriteAll(w io.Writer, msgs []Message) error {
	sw := NewWriter(w)
	for i := range msgs {
		if err := sw.Write(&msgs[i]); err != nil {
			return err
		}
	}
	return sw.Flush()
}
