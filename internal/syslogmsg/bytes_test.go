package syslogmsg

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestFastTimestampAgreesWithTimeParse sweeps the fast path's decision
// boundaries — month lengths, leap years and centuries, field limits,
// leap-second notation, malformed widths — and demands exact agreement
// with time.Parse on both acceptance and parsed value. The fallback
// guarantees errors match; this pins down the accept side.
func TestFastTimestampAgreesWithTimeParse(t *testing.T) {
	var cases []string
	for _, year := range []int{2009, 2010, 2012, 2000, 1900, 2100, 0} {
		for month := 0; month <= 13; month++ {
			for _, day := range []int{0, 1, 28, 29, 30, 31, 32} {
				cases = append(cases, fmt.Sprintf("%04d-%02d-%02d 12:34:56", year, month, day))
			}
		}
	}
	cases = append(cases,
		"2010-01-10 00:00:00",
		"2010-01-10 23:59:59",
		"2010-01-10 24:00:00",
		"2010-01-10 23:60:00",
		"2010-01-10 23:59:60", // leap-second notation: whatever time.Parse says
		"2010-1-10 00:00:15",
		"2010-01-10T00:00:15",
		"2010-01-10 00:00:15 ",
		" 2010-01-10 00:00:15",
		"2010-01-10 00:00:1x",
		"201O-01-10 00:00:15",
		"",
	)
	for _, c := range cases {
		want, wantErr := time.Parse(TimeLayout, c)
		got, ok := fastTimestamp(c)
		if ok && wantErr != nil {
			t.Errorf("fastTimestamp accepted %q, time.Parse rejects: %v", c, wantErr)
			continue
		}
		if ok && !got.Equal(want) {
			t.Errorf("fastTimestamp(%q) = %v, time.Parse = %v", c, got, want)
		}
		// !ok is always fine: the parser falls back to time.Parse.
	}
}

// TestParseLineBytesAllocs is the zero-allocation guard for the ingest hot
// path: one allocation per accepted message (the field storage), none per
// rejected or skipped line.
func TestParseLineBytesAllocs(t *testing.T) {
	good := []byte("2010-01-10 00:00:15|edge-router-7|LINK-3-UPDOWN|Interface Serial1/0, changed state to down")
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := ParseLineBytes(good, 7); err != nil {
			t.Fatal(err)
		}
	}); allocs > 1 {
		t.Errorf("ParseLineBytes allocates %.1f times per accepted message, want <= 1", allocs)
	}
	bad := []byte("no separators at all")
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := ParseLineBytes(bad, 0); err == nil {
			t.Fatal("malformed line accepted")
		}
	}); allocs > 3 {
		// The error value itself costs a constant few allocations; the
		// guard is that rejection never scales past that.
		t.Errorf("ParseLineBytes allocates %.1f times per rejected line", allocs)
	}
}

// TestReaderReadAllocs guards the full Read path: scanner token -> message,
// with comment and blank lines free.
func TestReaderReadAllocs(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 64; i++ {
		b.WriteString("# comment\n\n")
		fmt.Fprintf(&b, "2010-01-10 00:00:%02d|r%d|LINK-3-UPDOWN|detail %d\n", i%60, i%8, i)
	}
	text := b.String()
	allocs := testing.AllocsPerRun(20, func() {
		r := NewReader(strings.NewReader(text))
		n := 0
		for {
			if _, err := r.Read(); err != nil {
				break
			}
			n++
		}
		if n != 64 {
			t.Fatalf("read %d messages", n)
		}
	})
	// Per run: scanner + buffer setup is constant; the loop body must stay
	// at one allocation per message (64) with slack for the reader itself.
	if allocs > 72 {
		t.Errorf("Reader run allocated %.1f times for 64 messages", allocs)
	}
}

func BenchmarkParseLine(b *testing.B) {
	line := "2010-01-10 00:00:15|edge-router-7|LINK-3-UPDOWN|Interface Serial1/0, changed state to down"
	b.ReportAllocs()
	b.SetBytes(int64(len(line)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseLine(line, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseLineBytes(b *testing.B) {
	line := []byte("2010-01-10 00:00:15|edge-router-7|LINK-3-UPDOWN|Interface Serial1/0, changed state to down")
	b.ReportAllocs()
	b.SetBytes(int64(len(line)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseLineBytes(line, 0); err != nil {
			b.Fatal(err)
		}
	}
}
