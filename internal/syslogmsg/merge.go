package syslogmsg

import (
	"container/heap"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Collectors commonly keep one file per router; the pipeline wants one
// time-sorted stream. MergeReaders performs a k-way merge of independently
// sorted streams, reassigning contiguous indices; ReadGlob does the same
// for a filesystem pattern.

// mergeItem is one head-of-stream entry in the merge heap.
type mergeItem struct {
	msg Message
	src int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	return SortByTime(&h[i].msg, &h[j].msg)
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	out := old[n-1]
	*h = old[:n-1]
	return out
}

// MergeReaders reads every stream (lenient parsing) and merges them by
// timestamp. Streams whose internal order is imperfect are tolerated: each
// is fully read and sorted before merging, so the cost is O(total log
// total) in the worst case but a heap merge when inputs are already sorted.
func MergeReaders(readers ...io.Reader) ([]Message, error) {
	streams := make([][]Message, 0, len(readers))
	for i, r := range readers {
		sr := NewReader(r)
		sr.SetLenient(true)
		msgs, err := sr.ReadAll()
		if err != nil {
			return nil, fmt.Errorf("syslogmsg: stream %d: %w", i, err)
		}
		sorted := true
		for j := 1; j < len(msgs); j++ {
			if msgs[j].Time.Before(msgs[j-1].Time) {
				sorted = false
				break
			}
		}
		if !sorted {
			sort.SliceStable(msgs, func(a, b int) bool { return SortByTime(&msgs[a], &msgs[b]) })
		}
		if len(msgs) > 0 {
			streams = append(streams, msgs)
		}
	}
	return mergeSorted(streams), nil
}

// mergeSorted heap-merges per-stream sorted slices, assigning fresh indices.
func mergeSorted(streams [][]Message) []Message {
	total := 0
	h := make(mergeHeap, 0, len(streams))
	next := make([]int, len(streams))
	for i, s := range streams {
		total += len(s)
		h = append(h, mergeItem{msg: s[0], src: i})
		next[i] = 1
	}
	heap.Init(&h)
	out := make([]Message, 0, total)
	for h.Len() > 0 {
		it := heap.Pop(&h).(mergeItem)
		it.msg.Index = uint64(len(out))
		out = append(out, it.msg)
		if n := next[it.src]; n < len(streams[it.src]) {
			heap.Push(&h, mergeItem{msg: streams[it.src][n], src: it.src})
			next[it.src] = n + 1
		}
	}
	return out
}

// ReadGlob reads and merges every file matching the pattern (or the single
// file when the pattern contains no metacharacters). At least one file must
// match.
func ReadGlob(pattern string) ([]Message, error) {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return nil, fmt.Errorf("syslogmsg: glob %q: %w", pattern, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("syslogmsg: no files match %q", pattern)
	}
	sort.Strings(paths)
	files := make([]io.Reader, 0, len(paths))
	var closers []*os.File
	defer func() {
		for _, f := range closers {
			f.Close()
		}
	}()
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, fmt.Errorf("syslogmsg: open %s: %w", p, err)
		}
		closers = append(closers, f)
		files = append(files, f)
	}
	return MergeReaders(files...)
}
