package syslogmsg

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Collectors commonly keep one file per router; the pipeline wants one
// time-sorted stream. MergeReaders performs a k-way merge of independently
// sorted streams, reassigning contiguous indices; ReadGlob does the same
// for a filesystem pattern.

// mergeItem is one head-of-stream entry in the merge heap.
type mergeItem struct {
	msg Message
	src int
}

// mergeHeap is a hand-rolled min-heap on (SortByTime, src) — the same
// pattern as the streamer's reorder heap. push/pop run once per merged
// message, and the concrete element type avoids container/heap's
// per-operation interface boxing allocation. The src tiebreak makes the
// merge fully deterministic even when two streams carry identical
// (time, router, index) heads.
type mergeHeap []mergeItem

func (h mergeHeap) less(i, j int) bool {
	if SortByTime(&h[i].msg, &h[j].msg) {
		return true
	}
	if SortByTime(&h[j].msg, &h[i].msg) {
		return false
	}
	return h[i].src < h[j].src
}

func (h *mergeHeap) push(it mergeItem) {
	*h = append(*h, it)
	q := *h
	for i := len(q) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *mergeHeap) pop() mergeItem {
	q := *h
	n := len(q) - 1
	it := q[0]
	q[0] = q[n]
	q[n] = mergeItem{}
	q = q[:n]
	*h = q
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.less(l, small) {
			small = l
		}
		if r < n && q.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	return it
}

// MergeReaders reads every stream (lenient parsing) and merges them by
// timestamp. Streams whose internal order is imperfect are tolerated: each
// is fully read and sorted before merging, so the cost is O(total log
// total) in the worst case but a heap merge when inputs are already sorted.
func MergeReaders(readers ...io.Reader) ([]Message, error) {
	streams := make([][]Message, 0, len(readers))
	for i, r := range readers {
		sr := NewReader(r)
		sr.SetLenient(true)
		msgs, err := sr.ReadAll()
		if err != nil {
			return nil, fmt.Errorf("syslogmsg: stream %d: %w", i, err)
		}
		sorted := true
		for j := 1; j < len(msgs); j++ {
			if msgs[j].Time.Before(msgs[j-1].Time) {
				sorted = false
				break
			}
		}
		if !sorted {
			sort.SliceStable(msgs, func(a, b int) bool { return SortByTime(&msgs[a], &msgs[b]) })
		}
		if len(msgs) > 0 {
			streams = append(streams, msgs)
		}
	}
	return mergeSorted(streams), nil
}

// mergeSorted heap-merges per-stream sorted slices, assigning fresh
// indices. The heap never exceeds len(streams) entries, so beyond the
// output slice the merge allocates a small constant regardless of message
// count (guarded by TestMergeSortedAllocs).
func mergeSorted(streams [][]Message) []Message {
	total := 0
	h := make(mergeHeap, 0, len(streams))
	next := make([]int, len(streams))
	for i, s := range streams {
		total += len(s)
		h.push(mergeItem{msg: s[0], src: i})
		next[i] = 1
	}
	out := make([]Message, 0, total)
	for len(h) > 0 {
		it := h.pop()
		it.msg.Index = uint64(len(out))
		out = append(out, it.msg)
		if n := next[it.src]; n < len(streams[it.src]) {
			h.push(mergeItem{msg: streams[it.src][n], src: it.src})
			next[it.src] = n + 1
		}
	}
	return out
}

// ReadGlob reads and merges every file matching the pattern (or the single
// file when the pattern contains no metacharacters). At least one file must
// match.
func ReadGlob(pattern string) ([]Message, error) {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return nil, fmt.Errorf("syslogmsg: glob %q: %w", pattern, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("syslogmsg: no files match %q", pattern)
	}
	sort.Strings(paths)
	files := make([]io.Reader, 0, len(paths))
	var closers []*os.File
	defer func() {
		for _, f := range closers {
			f.Close()
		}
	}()
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, fmt.Errorf("syslogmsg: open %s: %w", p, err)
		}
		closers = append(closers, f)
		files = append(files, f)
	}
	return MergeReaders(files...)
}
