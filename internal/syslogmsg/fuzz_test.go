package syslogmsg

import (
	"testing"
)

// Fuzzing targets: the parsers face operator-controlled and wire-delivered
// input and must never panic, whatever arrives.

func FuzzParseLine(f *testing.F) {
	f.Add("2010-01-10 00:00:15|r1|LINK-3-UPDOWN|Interface Serial1/0, changed state to down")
	f.Add("||||")
	f.Add("2010-01-10 00:00:15|r1|X|")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, line string) {
		m, err := ParseLine(line, 0)
		if err != nil {
			return
		}
		// A successfully parsed message must re-serialize and re-parse to
		// the same fields (detail may contain '|', which Format preserves).
		back, err := ParseLine(m.Format(), 0)
		if err != nil {
			t.Fatalf("round trip of valid message failed: %v (%q)", err, m.Format())
		}
		if back.Router != m.Router || back.Code != m.Code || back.Detail != m.Detail || !back.Time.Equal(m.Time) {
			t.Fatalf("round trip drift: %+v vs %+v", back, m)
		}
	})
}

func FuzzParseWire(f *testing.F) {
	f.Add("<189>Jan 10 00:00:15 r1 %LINK-3-UPDOWN: Interface Serial1/0, changed state to down")
	f.Add("<189>1 2010-01-10T00:00:15Z r5 router - LINK-3-UPDOWN - detail here")
	f.Add("<1>")
	f.Add("<>x")
	f.Add("<189>1 2010-01-10T00:00:15Z r5 a b C [sd")
	f.Add("2010-01-10 00:00:15|r1|X-1-Y|d")
	f.Fuzz(func(t *testing.T, line string) {
		m, err := ParseWire(line, 0, 2010)
		if err != nil {
			return
		}
		if m.Router == "" || m.Code == "" {
			t.Fatalf("accepted message without router/code: %q -> %+v", line, m)
		}
	})
}

func FuzzParseCode(f *testing.F) {
	f.Add("LINK-3-UPDOWN")
	f.Add("SNMP-WARNING-linkDown")
	f.Add("---")
	f.Add("")
	f.Fuzz(func(t *testing.T, code string) {
		ci := ParseCode(code)
		if ci.Severity < -1 || ci.Severity > 7 {
			t.Fatalf("severity %d out of range for %q", ci.Severity, code)
		}
	})
}
