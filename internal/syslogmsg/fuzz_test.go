package syslogmsg

import (
	"testing"
)

// Fuzzing targets: the parsers face operator-controlled and wire-delivered
// input and must never panic, whatever arrives.

func FuzzParseLine(f *testing.F) {
	f.Add("2010-01-10 00:00:15|r1|LINK-3-UPDOWN|Interface Serial1/0, changed state to down")
	f.Add("||||")
	f.Add("2010-01-10 00:00:15|r1|X|")
	f.Add("garbage")
	f.Add("2010-02-29 00:00:00|r1|X-1-Y|not a leap year")
	f.Add("2012-02-29 23:59:59|r1|X-1-Y|leap year")
	f.Add("2010-01-10 23:59:60|r1|X-1-Y|leap second")
	f.Add("2010-1-10 00:00:15|r1|X-1-Y|narrow month")
	f.Fuzz(func(t *testing.T, line string) {
		m, err := ParseLine(line, 0)
		mb, errB := ParseLineBytes([]byte(line), 0)
		// The string and []byte paths must agree exactly: same accept/
		// reject decision, same fields, same error text.
		if (err == nil) != (errB == nil) {
			t.Fatalf("ParseLine err=%v but ParseLineBytes err=%v for %q", err, errB, line)
		}
		if err != nil {
			if err.Error() != errB.Error() {
				t.Fatalf("error drift:\nstring: %v\nbytes:  %v", err, errB)
			}
			return
		}
		if mb.Router != m.Router || mb.Code != m.Code || mb.Detail != m.Detail || !mb.Time.Equal(m.Time) {
			t.Fatalf("field drift:\nstring: %+v\nbytes:  %+v", m, mb)
		}
		// A successfully parsed message must re-serialize and re-parse to
		// the same fields (detail may contain '|', which Format preserves).
		back, err := ParseLine(m.Format(), 0)
		if err != nil {
			t.Fatalf("round trip of valid message failed: %v (%q)", err, m.Format())
		}
		if back.Router != m.Router || back.Code != m.Code || back.Detail != m.Detail || !back.Time.Equal(m.Time) {
			t.Fatalf("round trip drift: %+v vs %+v", back, m)
		}
	})
}

func FuzzParseWire(f *testing.F) {
	f.Add("<189>Jan 10 00:00:15 r1 %LINK-3-UPDOWN: Interface Serial1/0, changed state to down")
	f.Add("<189>1 2010-01-10T00:00:15Z r5 router - LINK-3-UPDOWN - detail here")
	f.Add("<1>")
	f.Add("<>x")
	f.Add("<189>1 2010-01-10T00:00:15Z r5 a b C [sd")
	f.Add("2010-01-10 00:00:15|r1|X-1-Y|d")
	f.Fuzz(func(t *testing.T, line string) {
		m, err := ParseWire(line, 0, 2010)
		mb, errB := ParseWireBytes([]byte(line), 0, 2010)
		if (err == nil) != (errB == nil) {
			t.Fatalf("ParseWire err=%v but ParseWireBytes err=%v for %q", err, errB, line)
		}
		if err != nil {
			if err.Error() != errB.Error() {
				t.Fatalf("error drift:\nstring: %v\nbytes:  %v", err, errB)
			}
			return
		}
		if mb.Router != m.Router || mb.Code != m.Code || mb.Detail != m.Detail || !mb.Time.Equal(m.Time) {
			t.Fatalf("field drift:\nstring: %+v\nbytes:  %+v", m, mb)
		}
		if m.Router == "" || m.Code == "" {
			t.Fatalf("accepted message without router/code: %q -> %+v", line, m)
		}
	})
}

func FuzzParseCode(f *testing.F) {
	f.Add("LINK-3-UPDOWN")
	f.Add("SNMP-WARNING-linkDown")
	f.Add("---")
	f.Add("")
	f.Fuzz(func(t *testing.T, code string) {
		ci := ParseCode(code)
		if ci.Severity < -1 || ci.Severity > 7 {
			t.Fatalf("severity %d out of range for %q", ci.Severity, code)
		}
	})
}
