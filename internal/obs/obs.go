// Package obs is the observability substrate of the online pipeline: a
// small, dependency-free metrics library (atomic counters, float gauges,
// bounded histograms) grouped in a Registry whose Snapshot is
// deterministically ordered and renders to JSON, plus an HTTP exporter
// (see http.go) serving /metrics and /healthz.
//
// Every metric type is safe for concurrent use and nil-safe: all methods
// on a nil *Counter, *Gauge, *Histogram, or *Registry are no-ops (reads
// return zero). Instrumented packages can therefore thread optional
// metric handles without guarding every call site — an uninstrumented
// pipeline pays one nil check per operation and allocates nothing.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value (stored as atomic bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the value by delta (CAS loop; lock-free).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: observations are counted into the
// first bucket whose upper bound is >= the value, with one implicit
// overflow bucket above the last bound. Bounds are fixed at creation, so
// recording is a binary search plus two atomic adds — no locks, bounded
// memory, safe on the hot path.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	counts  []atomic.Uint64
	total   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram with the given ascending upper bounds.
// Invalid bounds (empty, unsorted, or duplicated) panic: histogram shapes
// are static program configuration, not runtime input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d", i))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// LatencyBounds are the default bounds (seconds) for wall-time histograms:
// 100µs to 30s, roughly ×3 per step.
func LatencyBounds() []float64 {
	return []float64{0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30}
}

// SizeBounds are the default bounds for batch-size histograms: 1 to 1e6 in
// 1-3-10 steps.
func SizeBounds() []float64 {
	return []float64{1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000, 300000, 1e6}
}

// Registry is a named collection of metrics. Metric accessors are
// get-or-create, so independent pipeline stages can share one registry
// without coordination; names are flat dotted strings ("collector.udp.
// received"). A nil *Registry hands out nil metrics, which no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	samplers []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with bounds on first
// use. Later calls with different bounds return the existing histogram —
// the first registration wins.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Bucket is one histogram bucket: the count of observations at or below
// the upper bound LE. The overflow bucket renders LE as "+Inf".
type Bucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramValue is one histogram in a snapshot. Buckets are
// non-cumulative; Count is their sum.
type HistogramValue struct {
	Name    string   `json:"name"`
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot is a point-in-time copy of every metric in a registry, each
// section sorted by name so that rendering is deterministic; every
// registered bucket is present (including empty ones), so two snapshots
// of the same registry shape always align.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Counter returns the named counter's value (0 when absent).
func (s Snapshot) Counter(name string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's value (0 when absent).
func (s Snapshot) Gauge(name string) float64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Histogram returns the named histogram snapshot (nil when absent).
func (s Snapshot) Histogram(name string) *HistogramValue {
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return &s.Histograms[i]
		}
	}
	return nil
}

// OnSnapshot registers a sampler run at the start of every Snapshot, before
// any metric is read — the hook for pull-style metrics (runtime GC stats,
// pool gauges) that are only worth refreshing when someone is looking.
// Samplers run without the registry lock held, so they may freely call
// Counter/Gauge/Histogram; they must not call Snapshot.
func (r *Registry) OnSnapshot(f func()) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	r.samplers = append(r.samplers, f)
	r.mu.Unlock()
}

// Snapshot captures every metric. Counters and bucket counts are each read
// atomically; the snapshot as a whole is not a single atomic cut across
// metrics (concurrent writers may land between reads), which is the
// standard contract for scrape-style exporters.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	samplers := r.samplers
	r.mu.Unlock()
	for _, f := range samplers {
		f()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hv := HistogramValue{Name: name, Count: h.Count(), Sum: h.Sum()}
		for i := range h.counts {
			le := "+Inf"
			if i < len(h.bounds) {
				le = formatBound(h.bounds[i])
			}
			hv.Buckets = append(hv.Buckets, Bucket{LE: le, Count: h.counts[i].Load()})
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteJSON renders a snapshot of the registry as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// formatBound renders a float bound compactly ("0.001", "30", "1e+06").
func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}
