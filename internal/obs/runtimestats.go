package obs

import "runtime"

// PublishRuntime wires the Go runtime's allocator and garbage-collector
// books into reg as gauges, refreshed by an OnSnapshot sampler — so every
// /metrics scrape (and every Registry.Snapshot) reads a current picture
// without a background polling goroutine. This is the observability half of
// the steady-state allocation work: stream.pool.* counters say how hard the
// pipeline leans on its freelists, and these say what the collector paid
// for whatever still escaped.
//
//	runtime.heap.mallocs          cumulative heap objects allocated
//	runtime.heap.frees            cumulative heap objects freed
//	runtime.heap.live_objects     mallocs − frees
//	runtime.heap.alloc_bytes      bytes of live heap (runtime.MemStats.HeapAlloc)
//	runtime.gc.cycles             completed GC cycles
//	runtime.gc.pause_total_seconds cumulative stop-the-world pause
//
// ReadMemStats stops the world briefly, which is fine at scrape cadence;
// do not call Snapshot in a per-message loop with this installed.
func PublishRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	var (
		mallocs = reg.Gauge("runtime.heap.mallocs")
		frees   = reg.Gauge("runtime.heap.frees")
		live    = reg.Gauge("runtime.heap.live_objects")
		heap    = reg.Gauge("runtime.heap.alloc_bytes")
		cycles  = reg.Gauge("runtime.gc.cycles")
		pause   = reg.Gauge("runtime.gc.pause_total_seconds")
	)
	reg.OnSnapshot(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		mallocs.Set(float64(ms.Mallocs))
		frees.Set(float64(ms.Frees))
		live.Set(float64(ms.Mallocs - ms.Frees))
		heap.Set(float64(ms.HeapAlloc))
		cycles.Set(float64(ms.NumGC))
		pause.Set(float64(ms.PauseTotalNs) / 1e9)
	})
}
