package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
				// Get-or-create from another goroutine must return the same
				// counter.
				reg.Counter("x").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 2*workers*per {
		t.Fatalf("counter = %d, want %d", got, 2*workers*per)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(workers*per)*0.5; got != want {
		t.Fatalf("gauge = %v, want %v", got, want)
	}
	g.Set(-3)
	if g.Value() != -3 {
		t.Fatalf("set failed: %v", g.Value())
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	// A value exactly on a bound lands in that bound's bucket (le semantics).
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 100, 101, 1e9} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 2} // (-inf,1], (1,10], (10,100], (100,+inf)
	for i := range h.counts {
		if got := h.counts[i].Load(); got != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+10+99+100+101+1e9; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(float64(i) * 0.001)
			}
		}(i)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bounds %v accepted", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	reg := NewRegistry()
	// Register in non-alphabetical order.
	reg.Counter("zeta").Add(1)
	reg.Counter("alpha").Add(2)
	reg.Gauge("mid").Set(3)
	reg.Gauge("aaa").Set(4)
	reg.Histogram("h2", []float64{1}).Observe(0.5)
	reg.Histogram("h1", []float64{1, 2}).Observe(1.5)

	s1 := reg.Snapshot()
	s2 := reg.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots differ:\n%+v\n%+v", s1, s2)
	}
	if s1.Counters[0].Name != "alpha" || s1.Counters[1].Name != "zeta" {
		t.Fatalf("counter order: %+v", s1.Counters)
	}
	if s1.Gauges[0].Name != "aaa" || s1.Histograms[0].Name != "h1" {
		t.Fatalf("order: %+v %+v", s1.Gauges, s1.Histograms)
	}
	// JSON render is byte-identical across snapshots.
	var b1, b2 bytes.Buffer
	if err := reg.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("JSON render not deterministic")
	}
	// Overflow bucket renders as +Inf.
	h := s1.Histogram("h1")
	if h == nil || h.Buckets[len(h.Buckets)-1].LE != "+Inf" {
		t.Fatalf("histogram snapshot: %+v", h)
	}
	if s1.Counter("alpha") != 2 || s1.Gauge("mid") != 3 || s1.Counter("missing") != 0 {
		t.Fatalf("accessors: %+v", s1)
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("y")
	h := reg.Histogram("z", []float64{1})
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics recorded something")
	}
	s := reg.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot: %+v", s)
	}
	var health *Health
	health.SetReady(true)
	health.Progress()
	if st := health.Check(); !st.Ready || !st.Live {
		t.Fatalf("nil health not healthy: %+v", st)
	}
}

func TestServeMetricsAndHealthz(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pipeline.in").Add(7)
	health := NewHealth(0)
	srv, err := Serve("127.0.0.1:0", reg, health)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	// Not ready yet.
	code, _ := get("/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz before ready = %d", code)
	}
	health.SetReady(true)
	code, body := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz after ready = %d (%s)", code, body)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	var s Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		t.Fatalf("metrics body not JSON: %v\n%s", err, body)
	}
	if s.Counter("pipeline.in") != 7 {
		t.Fatalf("snapshot over HTTP: %+v", s)
	}
}

func TestHealthLiveness(t *testing.T) {
	h := NewHealth(30 * time.Millisecond)
	h.SetReady(true)
	if st := h.Check(); !st.Live {
		t.Fatalf("fresh health not live: %+v", st)
	}
	time.Sleep(60 * time.Millisecond)
	if st := h.Check(); st.Live {
		t.Fatalf("stalled health still live: %+v", st)
	}
	h.Progress()
	if st := h.Check(); !st.Live {
		t.Fatalf("progress did not revive: %+v", st)
	}
}

func TestOnSnapshotSampler(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.OnSnapshot(func() {
		calls++
		r.Gauge("sampled.value").Set(float64(calls))
	})
	for want := 1; want <= 3; want++ {
		if got := r.Snapshot().Gauge("sampled.value"); got != float64(want) {
			t.Fatalf("snapshot %d: sampled.value = %v, want %d", want, got, want)
		}
	}
	if calls != 3 {
		t.Fatalf("sampler ran %d times for 3 snapshots", calls)
	}
	// nil registry and nil sampler are no-ops, matching the rest of the API.
	var nilReg *Registry
	nilReg.OnSnapshot(func() { t.Fatal("sampler on nil registry ran") })
	nilReg.Snapshot()
	r.OnSnapshot(nil)
	r.Snapshot()
}

func TestPublishRuntime(t *testing.T) {
	r := NewRegistry()
	PublishRuntime(r)
	sink := make([]*int, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, new(int))
	}
	_ = sink
	s := r.Snapshot()
	mallocs, frees := s.Gauge("runtime.heap.mallocs"), s.Gauge("runtime.heap.frees")
	if mallocs <= 0 || mallocs < frees {
		t.Fatalf("runtime books: mallocs %v frees %v", mallocs, frees)
	}
	if live := s.Gauge("runtime.heap.live_objects"); live != mallocs-frees {
		t.Fatalf("live %v != mallocs %v - frees %v", live, mallocs, frees)
	}
	if s.Gauge("runtime.heap.alloc_bytes") <= 0 {
		t.Fatal("heap alloc_bytes gauge not set")
	}
	// A second snapshot must re-sample: the world allocates between scrapes.
	s2 := r.Snapshot()
	if got := s2.Gauge("runtime.heap.mallocs"); got < mallocs {
		t.Fatalf("mallocs went backwards: %v then %v", mallocs, got)
	}
}

// TestServePprof pins the diagnostic endpoints riding the metrics mux: the
// pprof index, a named profile, and the symbol endpoint all answer on the
// same -metrics address, so one flag serves scrape and profiling alike.
func TestServePprof(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap?debug=1", "/debug/pprof/symbol"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d (%s)", path, resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s returned an empty body", path)
		}
	}
}
