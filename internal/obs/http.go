package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// Health tracks process health for the /healthz endpoint, separating the
// two questions an operator's probe asks:
//
//   - readiness: has one-time setup finished (for this system, is the
//     knowledge base loaded)? Until SetReady(true), /healthz is 503.
//   - liveness: is the pipeline still making progress? Call Progress()
//     whenever work happens (a message handled, a batch flushed). When
//     MaxIdle > 0 and no progress has been recorded for longer than it,
//     /healthz degrades to 503 even though the process is up — the exact
//     silent-stall mode a wedged collector exhibits.
type Health struct {
	maxIdle time.Duration
	ready   atomic.Bool
	last    atomic.Int64 // unix nanos of the last Progress call
}

// NewHealth builds a Health; maxIdle <= 0 disables the liveness check.
func NewHealth(maxIdle time.Duration) *Health {
	h := &Health{maxIdle: maxIdle}
	h.last.Store(time.Now().UnixNano())
	return h
}

// SetReady flips readiness (nil-safe).
func (h *Health) SetReady(ok bool) {
	if h != nil {
		h.ready.Store(ok)
	}
}

// Progress records that the pipeline did work just now (nil-safe).
func (h *Health) Progress() {
	if h != nil {
		h.last.Store(time.Now().UnixNano())
	}
}

// Status is the /healthz response body.
type Status struct {
	Ready bool `json:"ready"`
	Live  bool `json:"live"`
	// IdleSeconds is the time since the last recorded progress.
	IdleSeconds float64 `json:"idle_seconds"`
}

// Check evaluates health now. A nil Health is always ready and live, so an
// exporter without health wiring serves 200.
func (h *Health) Check() Status {
	if h == nil {
		return Status{Ready: true, Live: true}
	}
	idle := time.Duration(time.Now().UnixNano() - h.last.Load())
	return Status{
		Ready:       h.ready.Load(),
		Live:        h.maxIdle <= 0 || idle <= h.maxIdle,
		IdleSeconds: idle.Seconds(),
	}
}

// Server is a running metrics exporter.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP exporter on addr (e.g. "127.0.0.1:9090", or ":0"
// for an ephemeral port) with two endpoints:
//
//	/metrics — the registry snapshot as JSON
//	/healthz — 200 with a Status body when ready and live, else 503
//	/debug/pprof/ — the standard pprof handlers (profile, heap, trace, …),
//	                on the same mux so one -metrics flag serves both
//
// health may be nil (always healthy). The listener is bound synchronously,
// so a bad addr fails here rather than in the background.
func Serve(addr string, reg *Registry, health *Health) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			// Headers are already out; nothing useful left to do.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := health.Check()
		w.Header().Set("Content-Type", "application/json")
		if !st.Ready || !st.Live {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		_ = enc.Encode(st)
	})
	// pprof rides the metrics mux: the exporter address is already the
	// operator-facing diagnostic port, and the handlers are inert until hit.
	// (The handlers are package functions because this mux is not
	// http.DefaultServeMux, where net/http/pprof self-registers.)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s := &Server{ln: ln, srv: srv}
	go func() {
		// ErrServerClosed is the normal shutdown path; anything else has no
		// caller left to report to.
		_ = srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the exporter.
func (s *Server) Close() error { return s.srv.Close() }
