// Cluster streaming engine: the multi-process form of ShardedEngine.
//
// Topology (the caller is the dispatcher; each shard is a remote process):
//
//	caller ──batch frame──▶ sdshard 0 (RouterLocal) ──decision frame──▶
//	       ──batch frame──▶ sdshard 1 (RouterLocal) ──decision frame──▶  merge
//	            ⋮                                            ⋮            (local)
//
// The split is exactly PR 5's: remote shards own the router-local half of
// the grouper (temporal EWMA models, rule windows) and answer every batch
// — empty sub-batches included — with one decision record per batch; the
// local merge stage owns the group partition, closure, cross-router pass,
// event building and IDs, and replays each batch's original interleaving.
// The only difference from ShardedEngine is the hop: sub-batches travel as
// wire frames (internal/cluster) instead of channel sends, and decisions
// come back as Seq *deltas* instead of pointers. The merge stage resolves
// a delta through bySeq, a map of every applied message still in an open
// group — the closure-horizon invariant guarantees a decision's
// predecessor is still open when the decision is applied, so the lookup
// cannot miss. Output — events, scores, IDs, provisional updates, order —
// is byte-identical to the serial engine at any shard count.
//
// Fault tolerance: a dropped shard connection is a shard restart. The
// client layer re-seeds the replacement session from its last state
// snapshot and replays the batches after it (see cluster.Client); the
// merge stage never notices. A shard that stays unreachable past the
// client's bounded retries fails the engine, surfacing on the next
// Observe, like any engine error.
package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"syslogdigest/internal/checkpoint"
	"syslogdigest/internal/cluster"
	"syslogdigest/internal/event"
	"syslogdigest/internal/grouping"
	"syslogdigest/internal/locdict"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/rules"
)

// stateFetchTimeout bounds a checkpoint's per-shard state fetch; it spans
// a full reconnect cycle (the client re-requests after a redial), so it is
// generous.
const stateFetchTimeout = 60 * time.Second

// ClusterRTTBounds are histogram bounds for batch round-trip time
// (dispatch write to decision read), spanning loopback microseconds to a
// congested-WAN second.
func ClusterRTTBounds() []float64 {
	return []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}
}

// ClusterMetrics extend the sharded metric set with the wire-level series.
// The embedded handles keep their sharded meanings (per-shard series are
// fed from the decision records' stats instead of shard goroutines); the
// Client handles are shared by every shard connection, so the counters are
// engine totals.
type ClusterMetrics struct {
	ShardedMetrics
	Client cluster.ClientMetrics
	// PunctApplied counts batches fully applied by the merge stage
	// (stream.cluster.punctuations_applied). At quiescence
	// batches_sent == punctuations_applied × shards.
	PunctApplied *obs.Counter
}

// clusterBatch tells the merge stage how to apply one batch: the shard
// sub-batches (whose pooled records the merge consumes), the interleaving,
// and the batch sequence the decision frames will carry.
type clusterBatch struct {
	seq   uint64
	order []uint8
	subs  [][]*grouping.Pending
	punct time.Time
	kind  ctrlKind
}

// ClusterEngine is the distributed counterpart of ShardedEngine, with the
// same external contract: Observe messages in nondecreasing time order,
// receive closed events back, byte-identical to the serial engine.
//
// Not safe for concurrent use by multiple callers (one dispatcher), and
// SetMetrics/SetClusterMetrics must precede the first Observe. Close
// releases the merge goroutine and the shard connections.
type ClusterEngine struct {
	shardable *grouping.Shardable
	builder   *event.Builder
	workers   int
	batchSize int
	perShard  int
	met       ClusterMetrics
	logf      func(format string, args ...any)

	addrs []string
	ccfg  cluster.GroupConfig
	kbSig string
	seeds []*grouping.LocalPartState // restore seeds, nil when fresh

	// Dispatcher state (caller goroutine); mirrors ShardedEngine.
	running  bool
	closed   bool
	started  bool
	lastTime time.Time
	pending  int
	order    []uint8
	subs     [][]*grouping.Pending
	batchSeq uint64

	clients []*cluster.Client
	mergeIn chan clusterBatch
	ack     chan struct{}
	wg      sync.WaitGroup

	maxDispatched atomic.Int64
	lowWMns       atomic.Int64

	// Merge-goroutine state. The caller may touch these only in the quiet
	// window after a sync/drain ack and before the next dispatch.
	merger *grouping.Merger
	// bySeq resolves decision deltas: every applied message, until its
	// group closes. Bounded by open messages.
	bySeq         map[int]*grouping.Pending
	nextID        int
	localStats    []grouping.LocalStats
	evictionsPub  int
	evictionsSeen []int          // per-shard cumulative evictions already published
	members       []event.Member // emit scratch
	rulesScratch  []*grouping.Pending
	prov          bool
	updMembers    []event.Member

	mu  sync.Mutex
	out []event.Event
	upd []event.Update
	err error
}

// NewCluster builds a cluster engine dispatching to one remote shard per
// address (repeat an address to host several shards in one process). The
// connections open lazily on the first Observe.
func NewCluster(dict *locdict.Dictionary, rb *rules.RuleBase, cfg Config, addrs []string) (*ClusterEngine, error) {
	if len(addrs) < 1 || len(addrs) > MaxShardWorkers {
		return nil, fmt.Errorf("stream: shard address count %d out of range [1, %d]", len(addrs), MaxShardWorkers)
	}
	s, err := grouping.NewShardable(dict, rb, cfg.Grouping)
	if err != nil {
		return nil, err
	}
	workers := len(addrs)
	return &ClusterEngine{
		shardable:     s,
		builder:       event.NewBuilder(cfg.Freq, cfg.Labeler),
		workers:       workers,
		batchSize:     DefaultShardBatch,
		perShard:      (s.MaxStreams() + workers - 1) / workers,
		addrs:         append([]string(nil), addrs...),
		ccfg:          cluster.ConfigFrom(cfg.Grouping.Config),
		kbSig:         cluster.Fingerprint(dict, rb),
		seeds:         make([]*grouping.LocalPartState, workers),
		merger:        s.NewMerger(),
		bySeq:         make(map[int]*grouping.Pending),
		prov:          cfg.Grouping.ProvisionalHorizon > 0,
		localStats:    make([]grouping.LocalStats, workers),
		evictionsSeen: make([]int, workers),
		subs:          make([][]*grouping.Pending, workers),
	}, nil
}

// Workers is the shard count.
func (e *ClusterEngine) Workers() int { return e.workers }

// SetBatchSize overrides the dispatch batch size (<= 0: DefaultShardBatch).
// Must precede the first Observe.
func (e *ClusterEngine) SetBatchSize(n int) {
	if e.running {
		return
	}
	if n <= 0 {
		n = DefaultShardBatch
	}
	e.batchSize = n
}

// SetLogf installs a logger for connection lifecycle lines (reconnects,
// replays). Must precede the first Observe; nil discards them.
func (e *ClusterEngine) SetLogf(f func(format string, args ...any)) {
	if !e.running {
		e.logf = f
	}
}

// SetMetrics installs the serial metric set (cluster and per-shard handles
// absent). Must precede the first Observe.
func (e *ClusterEngine) SetMetrics(m Metrics) {
	e.SetClusterMetrics(ClusterMetrics{ShardedMetrics: ShardedMetrics{Metrics: m}})
}

// SetClusterMetrics installs the full cluster metric set. Must precede the
// first Observe (same guard and reasoning as SetShardedMetrics).
func (e *ClusterEngine) SetClusterMetrics(m ClusterMetrics) {
	if e.running || e.pending > 0 {
		return
	}
	e.met = m
	e.shardable.Pool().SetMetrics(grouping.PoolMetrics{
		Gets: m.Grouping.PoolGets,
		Puts: m.Grouping.PoolPuts,
		Live: m.Grouping.PoolLive,
	})
}

// start opens the shard connections and launches the merge goroutine.
func (e *ClusterEngine) start() {
	e.running = true
	e.clients = make([]*cluster.Client, e.workers)
	for k := range e.clients {
		e.clients[k] = cluster.NewClient(cluster.ClientConfig{
			Addr:       e.addrs[k],
			Shard:      k,
			Workers:    e.workers,
			MaxStreams: e.perShard,
			KBSig:      e.kbSig,
			Config:     e.ccfg,
			Metrics:    e.met.Client,
			Logf:       e.logf,
		}, e.seeds[k])
		e.seeds[k] = nil // the client owns the seed now
	}
	e.mergeIn = make(chan clusterBatch, shardQueueDepth)
	e.ack = make(chan struct{}, 1)
	e.merger.SetMetrics(grouping.MergeMetrics{
		MergeTemporal:   e.met.Grouping.MergeTemporal,
		MergeRule:       e.met.Grouping.MergeRule,
		MergeCross:      e.met.Grouping.MergeCross,
		CrossCandidates: e.met.Grouping.CrossCandidates,
		OpenMessages:    e.met.Grouping.OpenMessages,
		OpenGroups:      e.met.Grouping.OpenGroups,
	})
	e.wg.Add(1)
	go e.mergeLoop()
}

// Observe ingests one message (nondecreasing Time required) and returns
// the events emitted since the last call. Same contract and partitioning
// as ShardedEngine.Observe; the router hash is the same, so a cluster of N
// shards sees exactly the sub-batches N in-process workers would.
func (e *ClusterEngine) Observe(m Message) ([]event.Event, error) {
	if err := e.peekErr(); err != nil {
		return nil, err
	}
	if e.closed {
		return nil, fmt.Errorf("stream: cluster engine closed")
	}
	if e.started && m.Time.Before(e.lastTime) {
		return nil, fmt.Errorf("grouping: incremental requires nondecreasing timestamps (got %v after watermark %v)",
			m.Time, e.lastTime)
	}
	e.started = true
	e.lastTime = m.Time
	p := e.shardable.Pool().Get(grouping.Message{
		Seq: m.Seq, Time: m.Time, Router: m.Router, Template: m.Template,
		Loc: m.Loc, AllLocs: m.AllLocs, Peers: m.Peers, Raw: m.Raw,
	})
	k := shardOf(m.Router, e.workers)
	e.subs[k] = append(e.subs[k], p)
	e.order = append(e.order, uint8(k))
	e.pending++
	if e.pending >= e.batchSize {
		e.dispatch(ctrlNone)
	}
	return e.collect(), nil
}

// dispatch ships every shard its sub-batch as a wire frame (empty included
// — the sync invariant) and hands the merge stage the pendings plus the
// interleaving. SendBatch encodes on this goroutine, so the merge stage is
// free to recycle the records the moment their groups close.
func (e *ClusterEngine) dispatch(kind ctrlKind) {
	if !e.running {
		e.start()
	}
	punct := e.lastTime
	var punctNs int64
	if e.started {
		punctNs = punct.UnixNano()
		e.maxDispatched.Store(punctNs)
	}
	e.batchSeq++
	cb := clusterBatch{
		seq:   e.batchSeq,
		order: e.order,
		subs:  make([][]*grouping.Pending, e.workers),
		punct: punct,
		kind:  kind,
	}
	for k := 0; k < e.workers; k++ {
		e.clients[k].SendBatch(e.batchSeq, punctNs, kind == ctrlDrain, e.subs[k])
		cb.subs[k] = e.subs[k]
		e.subs[k] = nil
	}
	e.mergeIn <- cb
	e.order = nil
	e.pending = 0
}

// mergeLoop reads one decision record per shard per batch, replays the
// interleaving, resolves the Seq deltas through bySeq, and applies each
// message's joins to the global Merger — the same loop ShardedEngine runs,
// with map lookups where it has pointers. After a failure it keeps
// consuming so the dispatcher never blocks.
func (e *ClusterEngine) mergeLoop() {
	defer e.wg.Done()
	var js grouping.Joins
	decs := make([]*cluster.DecisionBatch, e.workers)
	idx := make([]int, e.workers)
	for cb := range e.mergeIn {
		failed := e.peekErr() != nil
		for k := 0; k < e.workers; k++ {
			idx[k] = 0
			decs[k] = nil
			db, ok := <-e.clients[k].Decisions()
			if !ok {
				if !failed {
					err := e.clients[k].Err()
					if err == nil {
						err = fmt.Errorf("stream: cluster shard %d: decision stream closed", k)
					}
					e.fail(err)
					failed = true
				}
				continue
			}
			decs[k] = db
			if !failed && db.Seq != cb.seq {
				e.fail(fmt.Errorf("stream: cluster shard %d answered batch %d, expected %d", k, db.Seq, cb.seq))
				failed = true
			}
			if !failed && db.ShardErr != "" {
				e.fail(fmt.Errorf("stream: cluster shard %d: %s", k, db.ShardErr))
				failed = true
			}
		}
		applied := false
		for _, k := range cb.order {
			db := decs[k]
			if db == nil || idx[k] >= len(db.Items) {
				break // shard failed, or erred mid-batch; its tail never computed
			}
			it := db.Items[idx[k]]
			p := cb.subs[k][idx[k]]
			idx[k]++
			if failed {
				continue
			}
			if !e.resolve(p, it, db, &js) {
				failed = true
				continue
			}
			e.bySeq[p.Msg().Seq] = p
			closed, err := e.merger.Apply(p, &js)
			if err != nil {
				e.fail(err)
				failed = true
				continue
			}
			e.emitUpdates()
			for _, cg := range closed {
				for i := range cg.Members {
					delete(e.bySeq, cg.Members[i].Seq)
				}
			}
			e.emit(closed)
			applied = true
		}
		if applied {
			e.met.Watermark.Set(float64(e.merger.Watermark().UnixNano()) / 1e9)
		}
		for k := range decs {
			db := decs[k]
			if db == nil {
				continue
			}
			e.localStats[k] = db.Stats
			sm := e.met.shard(k)
			sm.Pushed.Add(uint64(len(db.Items)))
			sm.Streams.Set(float64(db.Stats.Streams))
			if d := db.Stats.Evictions - e.evictionsSeen[k]; d > 0 {
				sm.Evictions.Add(uint64(d))
				e.evictionsSeen[k] = db.Stats.Evictions
			}
			if !cb.punct.IsZero() {
				sm.Watermark.Set(float64(cb.punct.UnixNano()) / 1e9)
			}
			e.clients[k].Recycle(db)
			decs[k] = nil
		}
		e.shardable.Pool().PublishLive()
		if !cb.punct.IsZero() {
			if !failed && len(cb.order) > 0 {
				lag := time.Duration(e.maxDispatched.Load() - cb.punct.UnixNano())
				e.met.MergeLag.Observe(lag.Seconds())
			}
			e.lowWMns.Store(cb.punct.UnixNano())
		}
		if !failed {
			e.met.PunctApplied.Inc()
		}
		if cb.kind == ctrlDrain && !failed {
			closed := e.merger.Drain()
			e.emitUpdates()
			e.emit(closed)
			// Drain closed every open group, so no future decision can
			// reference anything applied so far.
			clear(e.bySeq)
		}
		if cb.kind != ctrlNone {
			e.ack <- struct{}{}
		}
	}
}

// resolve rebuilds one message's Joins from its decision deltas. A miss is
// a protocol desync (the closure-horizon invariant says an open group pins
// every join predecessor), so it fails the engine.
func (e *ClusterEngine) resolve(p *grouping.Pending, it cluster.DecisionItem, db *cluster.DecisionBatch, js *grouping.Joins) bool {
	seq := p.Msg().Seq
	js.Temporal = nil
	if it.Temporal != 0 {
		pred, ok := e.bySeq[seq-int(it.Temporal)]
		if !ok {
			e.fail(fmt.Errorf("stream: cluster decision desync: temporal predecessor %d of %d not open", seq-int(it.Temporal), seq))
			return false
		}
		js.Temporal = pred
	}
	e.rulesScratch = e.rulesScratch[:0]
	for _, d := range db.Rules[it.RS:it.RE] {
		pred, ok := e.bySeq[seq-int(d)]
		if !ok {
			e.fail(fmt.Errorf("stream: cluster decision desync: rule predecessor %d of %d not open", seq-int(d), seq))
			return false
		}
		e.rulesScratch = append(e.rulesScratch, pred)
	}
	js.Rules = e.rulesScratch
	return true
}

// emit mirrors ShardedEngine.emit: score closed groups, queue the events.
func (e *ClusterEngine) emit(closed []grouping.ClosedGroup) {
	if len(closed) == 0 {
		return
	}
	wm := e.merger.Watermark()
	e.mu.Lock()
	for _, cg := range closed {
		e.members = e.members[:0]
		for i := range cg.Members {
			gm := &cg.Members[i]
			e.members = append(e.members, event.Member{
				Seq: gm.Seq, Time: gm.Time, Router: gm.Router,
				Template: gm.Template, Loc: gm.Loc, Raw: gm.Raw,
			})
		}
		ev := e.builder.BuildGroup(e.members)
		ev.ID = e.nextID
		e.nextID++
		e.met.Emitted.Inc()
		e.met.MergeEmitted.Inc()
		e.met.EmitLatency.Observe(wm.Sub(ev.End).Seconds())
		if e.prov {
			e.met.ProvFinalized.Inc()
			e.met.RevisionChurn.Observe(float64(cg.Revision))
			e.upd = append(e.upd, event.Update{
				EventID: cg.ID, Revision: cg.Revision,
				Status: event.StatusFinal, Event: ev,
			})
		}
		e.out = append(e.out, ev)
	}
	e.mu.Unlock()
	e.merger.Recycle(closed)
}

// emitUpdates mirrors ShardedEngine.emitUpdates (merge goroutine only).
func (e *ClusterEngine) emitUpdates() {
	if !e.prov {
		return
	}
	gus := e.merger.TakeUpdates()
	if len(gus) == 0 {
		return
	}
	wm := e.merger.Watermark()
	e.mu.Lock()
	for _, gu := range gus {
		e.upd = append(e.upd, buildUpdate(e.builder, &e.updMembers, &e.met.Metrics, wm, gu))
	}
	e.mu.Unlock()
}

// TakeUpdates takes the tier-tagged updates queued since the last call.
func (e *ClusterEngine) TakeUpdates() []event.Update {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.upd) == 0 {
		return nil
	}
	out := make([]event.Update, len(e.upd))
	copy(out, e.upd)
	clear(e.upd)
	e.upd = e.upd[:0]
	return out
}

// collect takes the events emitted since the last collection.
func (e *ClusterEngine) collect() []event.Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.out) == 0 {
		return nil
	}
	out := make([]event.Event, len(e.out))
	copy(out, e.out)
	clear(e.out)
	e.out = e.out[:0]
	return out
}

func (e *ClusterEngine) fail(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *ClusterEngine) peekErr() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// sync flushes the partial batch and blocks until the merge stage has
// applied everything dispatched (the post-ack quiet window).
func (e *ClusterEngine) sync() {
	if !e.running {
		return
	}
	e.dispatch(ctrlSync)
	<-e.ack
}

// publishGlobal refreshes the aggregate gauges from the latest per-shard
// decision stats; post-sync quiet window only.
func (e *ClusterEngine) publishGlobal() {
	streams, evs := 0, 0
	for _, ls := range e.localStats {
		streams += ls.Streams
		evs += ls.Evictions
	}
	e.met.Grouping.Streams.Set(float64(streams))
	if evs > e.evictionsPub {
		e.met.Grouping.StreamEvictions.Add(uint64(evs - e.evictionsPub))
		e.evictionsPub = evs
	}
}

// Drain flushes the partial batch, drops every shard's join windows,
// force-closes every open group, and returns all uncollected events.
func (e *ClusterEngine) Drain() []event.Event {
	if !e.running && e.pending == 0 {
		return nil
	}
	e.dispatch(ctrlDrain)
	<-e.ack
	e.publishGlobal()
	e.shardable.Pool().PublishLive()
	return e.collect()
}

// Close stops the merge goroutine and the shard connections; call Drain
// first if open groups should still emit. Session state on the shards dies
// with the connections.
func (e *ClusterEngine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if !e.running {
		return
	}
	close(e.mergeIn)
	e.wg.Wait()
	for _, c := range e.clients {
		c.Close()
	}
}

// Watermark is the maximum message time observed (dispatcher view).
func (e *ClusterEngine) Watermark() time.Time { return e.lastTime }

// LowWatermark is the merge stage's progress, as in ShardedEngine.
func (e *ClusterEngine) LowWatermark() time.Time {
	ns := e.lowWMns.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// Horizon is the closure bound.
func (e *ClusterEngine) Horizon() time.Duration { return e.shardable.Horizon() }

// ActiveRules synchronizes and snapshots the merge stage's cumulative
// per-pair rule-merge tally.
func (e *ClusterEngine) ActiveRules() map[rules.PairKey]int {
	e.sync()
	return e.merger.ActiveRules()
}

// Stats synchronizes and snapshots grouper state and merge counters.
func (e *ClusterEngine) Stats() grouping.IncStats {
	if !e.running {
		return grouping.IncStats{}
	}
	e.sync()
	e.publishGlobal()
	ms := e.merger.Stats()
	st := grouping.IncStats{
		OpenMessages:    ms.OpenMessages,
		OpenGroups:      ms.OpenGroups,
		TemporalMerges:  ms.TemporalMerges,
		RuleMerges:      ms.RuleMerges,
		CrossMerges:     ms.CrossMerges,
		CrossCandidates: ms.CrossCandidates,
	}
	for _, ls := range e.localStats {
		st.Streams += ls.Streams
		st.StreamEvictions += ls.Evictions
		st.RuleCandidates += ls.RuleCandidates
		st.RulePairs += ls.RulePairs
	}
	return st
}

// Pending is the number of messages in not-yet-closed groups.
func (e *ClusterEngine) Pending() int {
	if !e.running {
		return e.pending
	}
	e.sync()
	return e.merger.Stats().OpenMessages
}

// State synchronizes, fetches every shard's router-local state over the
// wire, and stitches the parts with the local merger into the same
// EngineState an in-process engine would snapshot (byte-identical — see
// grouping.CaptureRemoteParts). The engine stays live.
func (e *ClusterEngine) State() (EngineState, []event.Event, []event.Update, error) {
	if e.closed {
		return EngineState{}, nil, nil, fmt.Errorf("stream: cluster engine closed")
	}
	if e.running || e.pending > 0 {
		e.dispatch(ctrlSync)
		<-e.ack
	}
	if err := e.peekErr(); err != nil {
		return EngineState{}, nil, nil, err
	}
	parts := make([]grouping.LocalPartState, e.workers)
	for k := range parts {
		switch {
		case e.running:
			part, err := e.clients[k].FetchState(stateFetchTimeout)
			if err != nil {
				return EngineState{}, nil, nil, err
			}
			parts[k] = part
		case e.seeds[k] != nil:
			// Restored but never started: the seeds still hold the state.
			parts[k] = *e.seeds[k]
		}
	}
	inc, err := grouping.CaptureRemoteParts(e.merger, parts)
	if err != nil {
		return EngineState{}, nil, nil, err
	}
	st := EngineState{
		NextID:     e.nextID,
		LastTimeNs: checkpoint.TimeNs(e.lastTime),
		Started:    e.started,
		Inc:        inc,
	}
	e.mu.Lock()
	var pending []event.Event
	if len(e.out) > 0 {
		pending = append(pending, e.out...)
	}
	var pendingUpd []event.Update
	if len(e.upd) > 0 {
		pendingUpd = append(pendingUpd, e.upd...)
	}
	e.mu.Unlock()
	return st, pending, pendingUpd, nil
}

// RestoreCluster rebuilds a cluster engine from a snapshot taken at any
// worker count or engine shape. The router-local state reshards locally by
// the dispatcher's hash, each shard's part becomes its connection seed
// (shipped in the session handshake on first dial), and the merger state
// stays local. Connections still open lazily on the first Observe.
func RestoreCluster(dict *locdict.Dictionary, rb *rules.RuleBase, cfg Config, addrs []string, st EngineState) (*ClusterEngine, error) {
	e, err := NewCluster(dict, rb, cfg, addrs)
	if err != nil {
		return nil, err
	}
	locals, mg, err := e.shardable.RestoreParts(st.Inc, e.workers, e.perShard, func(r string) int {
		return shardOf(r, e.workers)
	})
	if err != nil {
		return nil, err
	}
	for k, rl := range locals {
		part := grouping.CaptureLocal(rl)
		e.seeds[k] = &part
	}
	e.merger = mg
	// Rebuild the delta-resolution index: every open message can still be
	// named by a future decision.
	mg.EachOpenPending(func(p *grouping.Pending) {
		e.bySeq[p.Msg().Seq] = p
	})
	e.nextID = st.NextID
	e.started = st.Started
	e.lastTime = checkpoint.NsTime(st.LastTimeNs)
	if e.started {
		ns := e.lastTime.UnixNano()
		e.maxDispatched.Store(ns)
		e.lowWMns.Store(ns)
	}
	return e, nil
}
