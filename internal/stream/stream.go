// Package stream is the incremental online engine of SyslogDigest: it
// consumes augmented messages one at a time and emits each network event as
// soon as no grouping pass can still extend it, instead of re-running the
// batch pipeline at quiet gaps.
//
// The engine wraps grouping.Incremental (which maintains the partition over
// bounded state and decides closure against the watermark) and
// event.Builder (which scores and labels each closed group exactly as the
// batch path would). Event-emission latency — how far the watermark had to
// advance past an event's last message before the event could be proven
// complete — is the closure horizon by construction: max(Smax, W, Cross)
// for enabled passes, ≈3h at the paper's Table 6 defaults. That is the
// price of exactness; operators wanting earlier previews can lower Smax or
// Drain on a timer.
//
// Not safe for concurrent use: one engine per feed, callers serialize.
package stream

import (
	"time"

	"syslogdigest/internal/event"
	"syslogdigest/internal/grouping"
	"syslogdigest/internal/locdict"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/rules"
)

// Message is one augmented message entering the engine. Seq must be unique
// and assigned in feed order (the engine's events report it back in
// MessageSeqs); Raw is the raw syslog index carried through to RawIndexes.
type Message struct {
	Seq      int
	Time     time.Time
	Router   string
	Template int
	Loc      locdict.Location
	AllLocs  []locdict.Location
	Peers    []string
	Raw      uint64
}

// Config assembles an engine.
type Config struct {
	// Grouping tunes the incremental grouper (windows, stage selection,
	// MaxStreams state bound).
	Grouping grouping.IncrementalConfig
	// Freq supplies historical signature frequencies for scoring (nil: all
	// unseen).
	Freq *event.FreqTable
	// Labeler names events (nil: default heuristics).
	Labeler *event.Labeler
}

// Metrics are the engine's optional observability handles (all nil-safe).
type Metrics struct {
	Grouping    grouping.IncMetrics
	Emitted     *obs.Counter   // stream.emitted
	EmitLatency *obs.Histogram // stream.emit_latency_seconds (log time)
	Watermark   *obs.Gauge     // stream.watermark_unix_seconds

	// Two-tier emission books (PR 9), populated only when the provisional
	// horizon is on. They reconcile exactly: ProvFinalized == Emitted, and
	// ProvEmitted == ProvFinalized + ProvSuperseded (every identity that
	// gets a first signal either closes or is absorbed).
	ProvEmitted    *obs.Counter   // stream.provisional.emitted (revision-0 records)
	ProvRevised    *obs.Counter   // stream.provisional.revised
	ProvSuperseded *obs.Counter   // stream.provisional.superseded
	ProvFinalized  *obs.Counter   // stream.provisional.finalized
	RevisionChurn  *obs.Histogram // stream.provisional.revision_churn (revisions per final event)
	ProvLatency    *obs.Histogram // stream.provisional.latency_seconds (log time, first signal)
}

// EmitLatencyBounds are histogram bounds sized for closure latency, which
// is the closure horizon (up to hours at Smax = 3h), not milliseconds.
// Provisional first-signal latency shares them: it lands in the low
// buckets (≈ the provisional horizon), which is exactly the contrast the
// two histograms exist to show.
func EmitLatencyBounds() []float64 {
	return []float64{1, 5, 15, 60, 300, 900, 1800, 3600, 7200, 10800, 14400, 21600, 43200}
}

// ChurnBounds are histogram bounds for revisions-per-final-event: almost
// always single digits (one provisional plus a handful of revisions).
func ChurnBounds() []float64 {
	return []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
}

// Engine is one incremental digest pipeline instance.
type Engine struct {
	inc     *grouping.Incremental
	builder *event.Builder
	nextID  int
	prov    bool // provisional tier on (cfg.Grouping.ProvisionalHorizon > 0)
	upd     []event.Update
	met     Metrics
	members []event.Member // emit scratch, reused across calls
}

// New builds an engine from learned knowledge. dict may not be nil; rb may
// be nil when rule-based grouping is disabled or nothing was mined.
func New(dict *locdict.Dictionary, rb *rules.RuleBase, cfg Config) (*Engine, error) {
	inc, err := grouping.NewIncremental(dict, rb, cfg.Grouping)
	if err != nil {
		return nil, err
	}
	return &Engine{
		inc:     inc,
		builder: event.NewBuilder(cfg.Freq, cfg.Labeler),
		prov:    cfg.Grouping.ProvisionalHorizon > 0,
	}, nil
}

// SetMetrics installs observability handles.
func (e *Engine) SetMetrics(m Metrics) {
	e.met = m
	e.inc.SetMetrics(m.Grouping)
}

// Observe ingests one message (nondecreasing Time required) and returns the
// events its watermark advance closed, oldest first. Event IDs count up in
// emission order; ranking across events is the caller's concern (a live
// feed has no batch to rank within).
func (e *Engine) Observe(m Message) ([]event.Event, error) {
	closed, err := e.inc.Observe(grouping.Message{
		Seq: m.Seq, Time: m.Time, Router: m.Router, Template: m.Template,
		Loc: m.Loc, AllLocs: m.AllLocs, Peers: m.Peers, Raw: m.Raw,
	})
	if err != nil {
		return nil, err
	}
	e.met.Watermark.Set(float64(e.inc.Watermark().UnixNano()) / 1e9)
	e.collectUpdates()
	return e.emit(closed), nil
}

// Drain force-closes every open group and returns the events, oldest
// first. The temporal models and watermark persist; see
// grouping.Incremental.Drain.
func (e *Engine) Drain() []event.Event {
	closed := e.inc.Drain()
	e.collectUpdates()
	return e.emit(closed)
}

// TakeUpdates returns and clears the tier-tagged updates queued since the
// last call, in emission order (provisional/revised/superseded records
// interleaved with the final records of the events the same steps closed).
// Always empty when the provisional tier is off.
func (e *Engine) TakeUpdates() []event.Update {
	out := e.upd
	e.upd = nil
	return out
}

// collectUpdates converts the grouper's pending provisional-tier updates
// into event form. Must run before emit so the queue keeps provisional
// records ahead of the final records they anticipate.
func (e *Engine) collectUpdates() {
	if !e.prov {
		return
	}
	for _, gu := range e.inc.TakeUpdates() {
		e.upd = append(e.upd, buildUpdate(e.builder, &e.members, &e.met, e.inc.Watermark(), gu))
	}
}

// Close is a no-op: the serial engine owns no goroutines. It exists so
// callers can hold either engine behind one interface (ShardedEngine's
// Close is load-bearing).
func (e *Engine) Close() {}

// Watermark is the maximum message time observed.
func (e *Engine) Watermark() time.Time { return e.inc.Watermark() }

// Horizon is the closure bound (also the worst-case emission latency in
// log time).
func (e *Engine) Horizon() time.Duration { return e.inc.Horizon() }

// ActiveRules is the cumulative per-pair rule-merge tally.
func (e *Engine) ActiveRules() map[rules.PairKey]int { return e.inc.ActiveRules() }

// Stats snapshots the grouper state and merge counters.
func (e *Engine) Stats() grouping.IncStats { return e.inc.Stats() }

// Pending is the number of messages in not-yet-closed groups.
func (e *Engine) Pending() int { return e.inc.Stats().OpenMessages }

// emit scores closed groups and hands the member buffers back to the
// grouper for reuse. The returned event slice is freshly allocated (the
// caller may retain it); it is the one steady-state allocation left on the
// emission path, paid only on the rare calls that actually close groups.
func (e *Engine) emit(closed []grouping.ClosedGroup) []event.Event {
	if len(closed) == 0 {
		return nil
	}
	wm := e.inc.Watermark()
	evs := make([]event.Event, 0, len(closed))
	for _, cg := range closed {
		e.members = e.members[:0]
		for i := range cg.Members {
			gm := &cg.Members[i]
			e.members = append(e.members, event.Member{
				Seq: gm.Seq, Time: gm.Time, Router: gm.Router,
				Template: gm.Template, Loc: gm.Loc, Raw: gm.Raw,
			})
		}
		ev := e.builder.BuildGroup(e.members)
		ev.ID = e.nextID
		e.nextID++
		e.met.Emitted.Inc()
		e.met.EmitLatency.Observe(wm.Sub(ev.End).Seconds())
		if e.prov {
			e.met.ProvFinalized.Inc()
			e.met.RevisionChurn.Observe(float64(cg.Revision))
			e.upd = append(e.upd, event.Update{
				EventID: cg.ID, Revision: cg.Revision,
				Status: event.StatusFinal, Event: ev,
			})
		}
		evs = append(evs, ev)
	}
	e.inc.Recycle(closed)
	return evs
}

// buildUpdate converts one grouping-layer update into its event form and
// records the provisional books — the shared tail of both engines' update
// paths (the sharded engine runs it on the merge goroutine, preserving the
// serial emission order). members is the caller's reusable scratch.
func buildUpdate(b *event.Builder, members *[]event.Member, met *Metrics, wm time.Time, gu grouping.GroupUpdate) event.Update {
	u := event.Update{EventID: gu.ID, Revision: gu.Revision}
	switch gu.Kind {
	case grouping.UpdateSuperseded:
		u.Status = event.StatusSuperseded
		u.SupersededBy = gu.SupersededBy
		met.ProvSuperseded.Inc()
		return u
	case grouping.UpdateRevised:
		u.Status = event.StatusRevised
		met.ProvRevised.Inc()
	default:
		u.Status = event.StatusProvisional
		met.ProvEmitted.Inc()
	}
	ms := (*members)[:0]
	for i := range gu.Members {
		gm := &gu.Members[i]
		ms = append(ms, event.Member{
			Seq: gm.Seq, Time: gm.Time, Router: gm.Router,
			Template: gm.Template, Loc: gm.Loc, Raw: gm.Raw,
		})
	}
	*members = ms
	ev := b.BuildGroup(ms)
	ev.ID = -1 // the sequential final-stream ID is assigned only at closure
	u.Event = ev
	if u.Status == event.StatusProvisional {
		met.ProvLatency.Observe(wm.Sub(ev.End).Seconds())
	}
	return u
}
