// Checkpoint capture and restore for the streaming engines (PR 6).
//
// Both engine shapes serialize to one EngineState, so a snapshot taken at
// any worker count restores at any other: the grouping layer reshards (or
// exactly restores) the router-local state, and the dispatcher-level fields
// (next event ID, last accepted time) are shape-independent. Events already
// emitted but not yet collected by the caller are returned alongside the
// state — they are the caller's to persist, because dropping them would
// break exactly-once delivery across a restart.
package stream

import (
	"fmt"

	"syslogdigest/internal/checkpoint"
	"syslogdigest/internal/event"
	"syslogdigest/internal/grouping"
	"syslogdigest/internal/locdict"
	"syslogdigest/internal/rules"
)

// EngineState is the serializable state of a streaming engine (serial or
// sharded). Worker count, batch size, and metrics are runtime configuration
// and deliberately absent.
type EngineState struct {
	NextID     int               `json:"next_id"`
	LastTimeNs int64             `json:"last_time_ns"`
	Started    bool              `json:"started"`
	Inc        grouping.IncState `json:"inc"`
}

// State snapshots the serial engine. The extra return values mirror the
// sharded signature: uncollected events (always nil here — the serial
// engine hands events straight back from Observe) and tier-tagged updates
// not yet taken via TakeUpdates, which the caller must persist alongside
// the state to keep revision delivery exactly-once across a restart.
func (e *Engine) State() (EngineState, []event.Event, []event.Update, error) {
	inc := e.inc.State()
	var pending []event.Update
	if len(e.upd) > 0 {
		pending = append(pending, e.upd...)
	}
	return EngineState{
		NextID:     e.nextID,
		LastTimeNs: inc.Merger.WatermarkNs,
		Started:    inc.Merger.Started,
		Inc:        inc,
	}, nil, pending, nil
}

// RestoreEngine rebuilds a serial engine from a snapshot taken at any
// worker count (a multi-shard snapshot merges into the single local).
func RestoreEngine(dict *locdict.Dictionary, rb *rules.RuleBase, cfg Config, st EngineState) (*Engine, error) {
	inc, err := grouping.RestoreIncremental(dict, rb, cfg.Grouping, st.Inc)
	if err != nil {
		return nil, err
	}
	return &Engine{
		inc:     inc,
		builder: event.NewBuilder(cfg.Freq, cfg.Labeler),
		nextID:  st.NextID,
		prov:    cfg.Grouping.ProvisionalHorizon > 0,
	}, nil
}

// State synchronizes (flushing any partial batch and waiting until the
// merge stage has applied everything dispatched) and snapshots the engine.
// It also returns copies of the events and tier-tagged updates emitted but
// not yet collected — the caller must persist them with the state; they
// stay queued here and still surface on the next collection from the live
// engine.
func (e *ShardedEngine) State() (EngineState, []event.Event, []event.Update, error) {
	if e.closed {
		return EngineState{}, nil, nil, fmt.Errorf("stream: sharded engine closed")
	}
	if e.running || e.pending > 0 {
		e.dispatch(ctrlSync)
		<-e.ack
	}
	if err := e.peekErr(); err != nil {
		return EngineState{}, nil, nil, err
	}
	// Post-ack quiet window: the shard goroutines are parked on their input
	// channels and the merge goroutine on its, so the locals and the merger
	// are exclusively ours until the next dispatch.
	st := EngineState{
		NextID:     e.nextID,
		LastTimeNs: checkpoint.TimeNs(e.lastTime),
		Started:    e.started,
		Inc:        grouping.CaptureParts(e.locals, e.merger),
	}
	e.mu.Lock()
	var pending []event.Event
	if len(e.out) > 0 {
		pending = append(pending, e.out...)
	}
	var pendingUpd []event.Update
	if len(e.upd) > 0 {
		pendingUpd = append(pendingUpd, e.upd...)
	}
	e.mu.Unlock()
	return st, pending, pendingUpd, nil
}

// RestoreSharded rebuilds a sharded engine from a snapshot taken at any
// worker count. When the counts match, every shard's state (model LRU
// order, per-shard bounds and counters) restores exactly; otherwise the
// router-local state reshards by the same router hash the dispatcher uses.
// Worker goroutines still start lazily on the first Observe.
func RestoreSharded(dict *locdict.Dictionary, rb *rules.RuleBase, cfg Config, workers int, st EngineState) (*ShardedEngine, error) {
	e, err := NewSharded(dict, rb, cfg, workers)
	if err != nil {
		return nil, err
	}
	perShard := (e.shardable.MaxStreams() + workers - 1) / workers
	locals, mg, err := e.shardable.RestoreParts(st.Inc, workers, perShard, func(r string) int {
		return shardOf(r, workers)
	})
	if err != nil {
		return nil, err
	}
	e.locals = locals
	e.merger = mg
	e.nextID = st.NextID
	e.started = st.Started
	e.lastTime = checkpoint.NsTime(st.LastTimeNs)
	if e.started {
		ns := e.lastTime.UnixNano()
		e.maxDispatched.Store(ns)
		e.lowWMns.Store(ns)
	}
	return e, nil
}
