package stream

import (
	"fmt"
	"testing"
	"time"

	"syslogdigest/internal/grouping"
	"syslogdigest/internal/locdict"
	"syslogdigest/internal/temporal"
)

// TestShardedOutCapacityStable is the regression guard for the merge
// stage's uncollected-events queue: e.out used to be handed off by
// reslicing (e.out = nil), so every closure burst allocated a fresh backing
// array. collect now copies out and clear-truncates, keeping one backing
// for the engine's lifetime — so across many identical closure bursts the
// queue's capacity must settle, not grow with the number of bursts.
func TestShardedOutCapacityStable(t *testing.T) {
	dict, err := locdict.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Grouping: grouping.IncrementalConfig{Config: grouping.Config{
		Temporal:     temporal.Params{Alpha: 0.05, Beta: 5, Smin: time.Second, Smax: 30 * time.Second},
		OnlyTemporal: true,
	}}}
	e, err := NewSharded(dict, nil, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const bursts = 50
	const perBurst = 64
	now := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	seq := 0
	collected := 0
	caps := make([]int, 0, bursts)
	for b := 0; b < bursts; b++ {
		// Every message is its own (router, template) stream, so each
		// burst opens perBurst singleton groups; Drain closes them all at
		// once — the worst-case emission burst for the queue.
		for i := 0; i < perBurst; i++ {
			r := fmt.Sprintf("r%d", i)
			evs, err := e.Observe(Message{
				Seq: seq, Time: now, Router: r, Template: i,
				Loc: locdict.RouterLoc(r), Raw: uint64(seq),
			})
			if err != nil {
				t.Fatal(err)
			}
			collected += len(evs)
			seq++
		}
		collected += len(e.Drain())
		now = now.Add(time.Minute)
		e.mu.Lock()
		caps = append(caps, cap(e.out))
		e.mu.Unlock()
	}
	if collected != bursts*perBurst {
		t.Fatalf("collected %d events, want %d", collected, bursts*perBurst)
	}
	// Let the first few bursts grow the backing to its working size; after
	// that the capacity must hold steady.
	settled := caps[4]
	if settled == 0 {
		t.Fatalf("queue capacity never grew: %v", caps[:8])
	}
	for b := 5; b < bursts; b++ {
		if caps[b] != settled {
			t.Fatalf("queue capacity grew after settling: burst 4 cap %d, burst %d cap %d (all: %v)",
				settled, b, caps[b], caps)
		}
	}
}
