// Sharded streaming engine: the multi-core form of Engine.
//
// Topology (one goroutine per box, the caller is the dispatcher):
//
//	caller ──batch──▶ shard 0 (RouterLocal) ──joins──▶
//	        ──batch──▶ shard 1 (RouterLocal) ──joins──▶  merge (Merger +
//	            ⋮                                  ⋮      event.Builder)
//	        ──batch──▶ shard N-1             ──joins──▶
//
// Messages hash by router onto N shard workers. A worker owns the
// router-local half of the grouper state — temporal EWMA models and rule
// windows for its routers — and computes, per message, the join decisions
// (grouping.Joins). The merge stage owns everything global: the group
// partition, the closure list, the cross-router pass, event building, and
// event IDs. Because locdict location keys embed the router, every join
// decision a worker makes depends only on its own routers' subsequence,
// and because the merge stage applies those decisions in the original
// global order, the emitted events — set, scores, IDs, order — are
// byte-identical to the serial Engine at any worker count (see
// grouping/shard.go for the argument; the one caveat is the MaxStreams
// eviction bound, which is enforced per shard here and globally there).
//
// Coordination is batch punctuation: the dispatcher accumulates up to
// BatchSize messages, partitions them by router, and sends every shard its
// (possibly empty) sub-batch; each shard answers with exactly one result
// record per batch carrying the join decisions in order. The merge stage
// reads one record per shard per batch and replays the batch's original
// interleaving from the dispatcher's order vector. All channels are
// bounded, so a slow merge backpressures the shards and a slow shard
// backpressures the dispatcher — memory in flight is O(workers × depth ×
// batch).
//
// Watermarks: each shard's watermark is the punctuation (max message time)
// of the last batch it finished. The merge stage's low watermark is the
// punctuation of the last batch it fully applied — necessarily ≤ every
// shard watermark, and monotone because dispatch order is time order.
// Group closure tests against the Merger's own watermark exactly as in the
// serial engine, so closure (and thus emission) decisions are unchanged.
package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"syslogdigest/internal/event"
	"syslogdigest/internal/grouping"
	"syslogdigest/internal/locdict"
	"syslogdigest/internal/obs"
	"syslogdigest/internal/rules"
)

const (
	// DefaultShardBatch is the dispatch batch size: large enough to
	// amortize channel handoffs, small enough that a live feed's events
	// surface promptly (a batch also flushes on Drain and on any state
	// query).
	DefaultShardBatch = 256
	// shardQueueDepth bounds each channel in batches; total in-flight
	// memory is workers × depth × batch messages.
	shardQueueDepth = 4
	// MaxShardWorkers caps the worker count (the order vector stores shard
	// indexes in a byte).
	MaxShardWorkers = 256
)

// ShardMetrics are one shard worker's observability handles (nil-safe).
type ShardMetrics struct {
	Pushed    *obs.Counter // stream.shard.<k>.pushed
	Streams   *obs.Gauge   // stream.shard.<k>.streams
	Evictions *obs.Counter // stream.shard.<k>.evictions
	Watermark *obs.Gauge   // stream.shard.<k>.watermark_unix_seconds
}

// ShardedMetrics extend Metrics with the sharded topology's handles.
// The embedded Metrics keep their serial meanings: stream.emitted,
// stream.emit_latency_seconds and stream.watermark_unix_seconds are
// maintained by the merge stage, and the grouping merge counters and
// open-state gauges by the Merger it drives. The global stream.state
// streams/evictions handles aggregate across shards and refresh on every
// synchronizing call (Drain, Stats); the per-shard handles are live.
type ShardedMetrics struct {
	Metrics
	MergeEmitted *obs.Counter   // stream.merge.emitted
	MergeLag     *obs.Histogram // stream.merge.lag_seconds
	Shards       []ShardMetrics // index = shard; missing entries record nothing
}

func (m *ShardedMetrics) shard(k int) ShardMetrics {
	if k < len(m.Shards) {
		return m.Shards[k]
	}
	return ShardMetrics{}
}

// MergeLagBounds are histogram bounds for stream.merge.lag_seconds: how
// far (in log time) the merge stage trails the newest dispatched message.
// Steady state is under one batch of log time; hours mean the merge stage
// is the bottleneck.
func MergeLagBounds() []float64 {
	return []float64{0.001, 0.01, 0.1, 1, 10, 60, 300, 1800, 3600, 14400}
}

// shardBatch is one dispatch to one shard worker. The sub-batch carries
// pooled Pending records (acquired by the dispatcher, consumed by
// Merger.Apply downstream): shipping 8-byte pointers instead of Message
// values keeps the per-message cost of the shard hop to one struct copy —
// the same pool.Get copy the serial engine pays.
type shardBatch struct {
	msgs  []*grouping.Pending // this shard's sub-batch, in global order
	punct time.Time           // whole-batch punctuation watermark
	drain bool                // drop join windows after the batch
}

// shardItem is one message's computed join decisions. Rule predecessors
// live in the owning shardResult's rules arena as the window [rs, re) —
// one shared backing per result instead of one slice per item.
type shardItem struct {
	p        *grouping.Pending
	temporal *grouping.Pending
	rs, re   int32
}

// shardResult is one shard's answer to one batch: exactly one per batch,
// even when the sub-batch was empty. The merge stage recycles the items
// and rules backings through freeResults once the batch is applied.
type shardResult struct {
	items []shardItem
	rules []*grouping.Pending // arena backing the items' [rs, re) windows
	stats grouping.LocalStats
	err   error
}

type ctrlKind int

const (
	ctrlNone  ctrlKind = iota
	ctrlSync           // ack after the batch is fully applied
	ctrlDrain          // then force-close every open group, then ack
)

// mergeBatch tells the merge stage how to interleave one batch's shard
// results: order[i] is the shard that holds the batch's i-th message.
type mergeBatch struct {
	order []uint8
	punct time.Time
	kind  ctrlKind
}

// ShardedEngine is the parallel counterpart of Engine, with the same
// external contract: Observe messages in nondecreasing time order, receive
// closed events back. The only visible difference is delivery timing —
// events surface on the Observe call after their batch is applied rather
// than the exact call that closed them; the event sequence itself (set,
// scores, IDs, order) is identical.
//
// Not safe for concurrent use by multiple callers (one dispatcher), and
// SetMetrics must precede the first Observe. Close releases the worker
// goroutines; an unclosed engine leaks them.
type ShardedEngine struct {
	shardable *grouping.Shardable
	builder   *event.Builder
	workers   int
	batchSize int
	met       ShardedMetrics

	// Dispatcher state (caller goroutine). Messages are partitioned at
	// Observe time: each one is wrapped in a pooled Pending and appended
	// straight to its shard's sub-batch, with the order vector recording
	// the interleaving — there is no intermediate whole-batch buffer to
	// copy through and clear.
	running  bool
	closed   bool
	started  bool
	lastTime time.Time
	pending  int     // messages partitioned, not yet dispatched
	order    []uint8 // their interleaving (order[i] = shard of message i)

	shardIn  []chan shardBatch
	shardOut []chan shardResult
	mergeIn  chan mergeBatch
	ack      chan struct{}
	wg       sync.WaitGroup

	// Recycling channels: slice backings circulate dispatcher → shard →
	// (merge) → back, so the steady state allocates nothing. A channel of
	// slice headers (unlike sync.Pool, which would box them) recycles
	// without allocating. All sends are non-blocking — a full free list
	// just drops the buffer to the GC — and receives fall back to
	// allocation, so the channels never add coupling, only reuse.
	freeMsgs    chan []*grouping.Pending // sub-batch backings, returned by shards
	freeResults chan shardResult         // items+rules backings, returned by merge
	freeOrders  chan []uint8             // order vectors, returned by merge
	subs        [][]*grouping.Pending    // in-progress partition, one per shard

	// locals are the shard workers' RouterLocals, kept so checkpoint
	// capture can reach them. Pre-populated by RestoreSharded, created by
	// start otherwise; after start the caller may touch them only in the
	// post-ack quiet window (see State).
	locals []*grouping.RouterLocal

	maxDispatched atomic.Int64 // unixnano of newest dispatched message
	lowWMns       atomic.Int64 // unixnano punctuation of last applied batch

	// Merge-goroutine state. The caller may touch these only in the quiet
	// window after a sync/drain ack and before the next dispatch.
	merger       *grouping.Merger
	nextID       int
	localStats   []grouping.LocalStats
	evictionsPub int
	members      []event.Member // emit scratch, merge goroutine only

	// Two-tier emission (PR 9): the merge stage converts the Merger's
	// provisional-tier updates right where it emits finals, so the update
	// sequence is the serial engine's at any worker count.
	prov       bool
	updMembers []event.Member // update scratch, merge goroutine only

	mu  sync.Mutex
	out []event.Event  // emitted, awaiting collection; backing reused (see collect)
	upd []event.Update // tier-tagged updates awaiting collection
	err error
}

// NewSharded builds a sharded engine over the same knowledge as New.
// workers must be in [1, MaxShardWorkers]; worker goroutines start lazily
// on the first Observe.
func NewSharded(dict *locdict.Dictionary, rb *rules.RuleBase, cfg Config, workers int) (*ShardedEngine, error) {
	if workers < 1 || workers > MaxShardWorkers {
		return nil, fmt.Errorf("stream: worker count %d out of range [1, %d]", workers, MaxShardWorkers)
	}
	s, err := grouping.NewShardable(dict, rb, cfg.Grouping)
	if err != nil {
		return nil, err
	}
	return &ShardedEngine{
		shardable:  s,
		builder:    event.NewBuilder(cfg.Freq, cfg.Labeler),
		workers:    workers,
		batchSize:  DefaultShardBatch,
		merger:     s.NewMerger(),
		prov:       cfg.Grouping.ProvisionalHorizon > 0,
		localStats: make([]grouping.LocalStats, workers),
		subs:       make([][]*grouping.Pending, workers),
	}, nil
}

// Workers is the shard count.
func (e *ShardedEngine) Workers() int { return e.workers }

// SetBatchSize overrides the dispatch batch size (<= 0: DefaultShardBatch);
// batch boundaries never affect output, only handoff amortization and
// delivery timing. Must precede the first Observe.
func (e *ShardedEngine) SetBatchSize(n int) {
	if e.running {
		return
	}
	if n <= 0 {
		n = DefaultShardBatch
	}
	e.batchSize = n
}

// SetMetrics installs the serial metric set (per-shard and merge-stage
// handles absent). Must precede the first Observe.
func (e *ShardedEngine) SetMetrics(m Metrics) {
	e.SetShardedMetrics(ShardedMetrics{Metrics: m})
}

// SetShardedMetrics installs the full sharded metric set. Must precede the
// first Observe — the pool counters start recording here, and a record
// acquired before installation would go uncounted (any Observe leaves
// either a partitioned message or a running engine behind, which is
// exactly what the guard checks; a freshly restored engine passes).
func (e *ShardedEngine) SetShardedMetrics(m ShardedMetrics) {
	if e.running || e.pending > 0 {
		return
	}
	e.met = m
	e.shardable.Pool().SetMetrics(grouping.PoolMetrics{
		Gets: m.Grouping.PoolGets,
		Puts: m.Grouping.PoolPuts,
		Live: m.Grouping.PoolLive,
	})
}

// start launches the worker and merge goroutines. The MaxStreams bound is
// split evenly across shards, so total temporal-model state stays bounded
// by (roughly) the serial engine's cap.
func (e *ShardedEngine) start() {
	e.running = true
	perShard := (e.shardable.MaxStreams() + e.workers - 1) / e.workers
	e.shardIn = make([]chan shardBatch, e.workers)
	e.shardOut = make([]chan shardResult, e.workers)
	if e.locals == nil {
		e.locals = make([]*grouping.RouterLocal, e.workers)
		for k := range e.locals {
			e.locals[k] = e.shardable.NewLocal(perShard)
		}
	}
	for k := 0; k < e.workers; k++ {
		e.shardIn[k] = make(chan shardBatch, shardQueueDepth)
		e.shardOut[k] = make(chan shardResult, shardQueueDepth)
		local := e.locals[k]
		sm := e.met.shard(k)
		local.SetMetrics(grouping.LocalMetrics{
			Streams:         sm.Streams,
			StreamEvictions: sm.Evictions,
			// Scan tallies are atomic counters, so every shard shares the
			// global handles rather than getting a per-shard series.
			RuleCandidates: e.met.Grouping.RuleCandidates,
			RulePairs:      e.met.Grouping.RulePairs,
		})
		e.wg.Add(1)
		go e.shardLoop(k, local, sm)
	}
	e.mergeIn = make(chan mergeBatch, shardQueueDepth)
	e.ack = make(chan struct{}, 1)
	// Capacities cover everything that can be in flight (queued batches,
	// one being processed, one being assembled) so steady state never
	// drops a buffer.
	e.freeMsgs = make(chan []*grouping.Pending, e.workers*(shardQueueDepth+2))
	e.freeResults = make(chan shardResult, e.workers*(shardQueueDepth+2))
	e.freeOrders = make(chan []uint8, shardQueueDepth+2)
	e.merger.SetMetrics(grouping.MergeMetrics{
		MergeTemporal:   e.met.Grouping.MergeTemporal,
		MergeRule:       e.met.Grouping.MergeRule,
		MergeCross:      e.met.Grouping.MergeCross,
		CrossCandidates: e.met.Grouping.CrossCandidates,
		OpenMessages:    e.met.Grouping.OpenMessages,
		OpenGroups:      e.met.Grouping.OpenGroups,
	})
	e.wg.Add(1)
	go e.mergeLoop()
}

// shardOf hashes a router name onto a shard (FNV-1a).
func shardOf(router string, workers int) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(router); i++ {
		h ^= uint64(router[i])
		h *= 1099511628211
	}
	return int(h % uint64(workers))
}

// Observe ingests one message (nondecreasing Time required) and returns
// the events emitted since the last call (nil when none). Events for a
// message surface once its batch flushes — at the latest BatchSize
// messages later, or at the next Drain or state query.
func (e *ShardedEngine) Observe(m Message) ([]event.Event, error) {
	if err := e.peekErr(); err != nil {
		return nil, err
	}
	if e.closed {
		return nil, fmt.Errorf("stream: sharded engine closed")
	}
	if e.started && m.Time.Before(e.lastTime) {
		// Same contract (and message) as the serial grouper: a regression
		// is rejected before touching any state.
		return nil, fmt.Errorf("grouping: incremental requires nondecreasing timestamps (got %v after watermark %v)",
			m.Time, e.lastTime)
	}
	e.started = true
	e.lastTime = m.Time
	// Partition on arrival: wrap the message in a pooled record (the one
	// per-message struct copy, same as the serial engine's pool.Get) and
	// append the pointer to its shard's sub-batch. The record's pipeline
	// reference travels with it and is consumed by Merger.Apply.
	p := e.shardable.Pool().Get(grouping.Message{
		Seq: m.Seq, Time: m.Time, Router: m.Router, Template: m.Template,
		Loc: m.Loc, AllLocs: m.AllLocs, Peers: m.Peers, Raw: m.Raw,
	})
	k := shardOf(m.Router, e.workers)
	sub := e.subs[k]
	if sub == nil {
		select {
		case sub = <-e.freeMsgs:
			sub = sub[:0]
		default:
			sub = make([]*grouping.Pending, 0, e.batchSize)
		}
	}
	e.subs[k] = append(sub, p)
	if e.order == nil {
		select {
		case e.order = <-e.freeOrders:
			e.order = e.order[:0]
		default:
		}
	}
	e.order = append(e.order, uint8(k))
	e.pending++
	if e.pending >= e.batchSize {
		e.dispatch(ctrlNone)
	}
	return e.collect(), nil
}

// dispatch hands every shard its sub-batch (empty included — one record
// per shard per batch is the synchronization invariant) and tells the
// merge stage how to re-interleave the results. Partitioning already
// happened in Observe; order vectors and sub-batch backings circulate
// through the free channels.
func (e *ShardedEngine) dispatch(kind ctrlKind) {
	if !e.running {
		e.start()
	}
	punct := e.lastTime
	if e.started {
		e.maxDispatched.Store(punct.UnixNano())
	}
	for k := 0; k < e.workers; k++ {
		e.shardIn[k] <- shardBatch{msgs: e.subs[k], punct: punct, drain: kind == ctrlDrain}
		e.subs[k] = nil
	}
	e.mergeIn <- mergeBatch{order: e.order, punct: punct, kind: kind}
	e.order = nil
	e.pending = 0
}

// shardLoop is one worker: it runs the router-local grouping passes over
// its sub-batches and ships the join decisions to the merge stage.
// Pendings arrive already pooled by the dispatcher; items and rule
// decisions land in recycled backings, and the consumed sub-batch backing
// goes straight back to the dispatcher. Metrics flush once per batch — the
// per-message atomic adds on shared counters were measurable contention.
func (e *ShardedEngine) shardLoop(k int, local *grouping.RouterLocal, met ShardMetrics) {
	defer e.wg.Done()
	var js grouping.Joins
	for b := range e.shardIn[k] {
		var res shardResult
		select {
		case res = <-e.freeResults:
		default:
		}
		for i := range b.msgs {
			p := b.msgs[i]
			if err := local.Step(p, &js); err != nil {
				res.err = err
				break
			}
			it := shardItem{p: p, temporal: js.Temporal, rs: int32(len(res.rules))}
			res.rules = append(res.rules, js.Rules...)
			it.re = int32(len(res.rules))
			res.items = append(res.items, it)
		}
		met.Pushed.Add(uint64(len(res.items)))
		if b.drain {
			local.DrainWindows()
		}
		if !b.punct.IsZero() {
			met.Watermark.Set(float64(b.punct.UnixNano()) / 1e9)
		}
		local.PublishMetrics()
		res.stats = local.Stats()
		if cap(b.msgs) > 0 {
			clear(b.msgs)
			select {
			case e.freeMsgs <- b.msgs[:0]:
			default:
			}
		}
		e.shardOut[k] <- res
	}
}

// mergeLoop is the merge stage: per batch it reads one result from every
// shard, replays the original interleaving, applies each message's join
// decisions to the global Merger, and emits closed groups as events. After
// a failure it keeps consuming (so the dispatcher never blocks) but stops
// applying; the error surfaces on the caller's next Observe.
func (e *ShardedEngine) mergeLoop() {
	defer e.wg.Done()
	var js grouping.Joins
	results := make([]shardResult, e.workers)
	idx := make([]int, e.workers)
	for mb := range e.mergeIn {
		for k := 0; k < e.workers; k++ {
			results[k] = <-e.shardOut[k]
			idx[k] = 0
		}
		failed := e.peekErr() != nil
		if !failed {
			for k := range results {
				if results[k].err != nil {
					e.fail(results[k].err)
					failed = true
					break
				}
			}
		}
		applied := false
		for _, k := range mb.order {
			if idx[k] >= len(results[k].items) {
				break // shard erred mid-batch; its tail never computed
			}
			it := results[k].items[idx[k]]
			idx[k]++
			if failed {
				continue
			}
			js.Temporal = it.temporal
			js.Rules = results[k].rules[it.rs:it.re:it.re]
			closed, err := e.merger.Apply(it.p, &js)
			if err != nil {
				e.fail(err)
				failed = true
				continue
			}
			e.emitUpdates()
			e.emit(closed)
			applied = true
		}
		if applied {
			e.met.Watermark.Set(float64(e.merger.Watermark().UnixNano()) / 1e9)
		}
		for k := range results {
			e.localStats[k] = results[k].stats
			r := results[k]
			clear(r.items)
			clear(r.rules)
			select {
			case e.freeResults <- shardResult{items: r.items[:0], rules: r.rules[:0]}:
			default:
			}
			results[k] = shardResult{}
		}
		if cap(mb.order) > 0 {
			select {
			case e.freeOrders <- mb.order[:0]:
			default:
			}
		}
		e.shardable.Pool().PublishLive()
		if !mb.punct.IsZero() {
			if !failed && len(mb.order) > 0 {
				lag := time.Duration(e.maxDispatched.Load() - mb.punct.UnixNano())
				e.met.MergeLag.Observe(lag.Seconds())
			}
			e.lowWMns.Store(mb.punct.UnixNano())
		}
		if mb.kind == ctrlDrain && !failed {
			closed := e.merger.Drain()
			e.emitUpdates()
			e.emit(closed)
		}
		if mb.kind != ctrlNone {
			e.ack <- struct{}{}
		}
	}
}

// emit scores closed groups exactly as Engine.emit and queues the events
// for the caller to collect. The member scratch is reused across calls,
// and the closed groups' member buffers go back to the Merger once the
// events are built.
func (e *ShardedEngine) emit(closed []grouping.ClosedGroup) {
	if len(closed) == 0 {
		return
	}
	wm := e.merger.Watermark()
	e.mu.Lock()
	for _, cg := range closed {
		e.members = e.members[:0]
		for i := range cg.Members {
			gm := &cg.Members[i]
			e.members = append(e.members, event.Member{
				Seq: gm.Seq, Time: gm.Time, Router: gm.Router,
				Template: gm.Template, Loc: gm.Loc, Raw: gm.Raw,
			})
		}
		ev := e.builder.BuildGroup(e.members)
		ev.ID = e.nextID
		e.nextID++
		e.met.Emitted.Inc()
		e.met.MergeEmitted.Inc()
		e.met.EmitLatency.Observe(wm.Sub(ev.End).Seconds())
		if e.prov {
			e.met.ProvFinalized.Inc()
			e.met.RevisionChurn.Observe(float64(cg.Revision))
			e.upd = append(e.upd, event.Update{
				EventID: cg.ID, Revision: cg.Revision,
				Status: event.StatusFinal, Event: ev,
			})
		}
		e.out = append(e.out, ev)
	}
	e.mu.Unlock()
	e.merger.Recycle(closed)
}

// emitUpdates converts the Merger's pending provisional-tier updates to
// event form and queues them (merge goroutine only). Runs before emit for
// the same Apply, so provisional records always precede the final records
// they anticipate.
func (e *ShardedEngine) emitUpdates() {
	if !e.prov {
		return
	}
	gus := e.merger.TakeUpdates()
	if len(gus) == 0 {
		return
	}
	wm := e.merger.Watermark()
	e.mu.Lock()
	for _, gu := range gus {
		e.upd = append(e.upd, buildUpdate(e.builder, &e.updMembers, &e.met.Metrics, wm, gu))
	}
	e.mu.Unlock()
}

// TakeUpdates takes the tier-tagged updates queued since the last call, in
// emission order. Like Observe's event delivery, updates surface once their
// batch is applied. Always empty when the provisional tier is off.
func (e *ShardedEngine) TakeUpdates() []event.Update {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.upd) == 0 {
		return nil
	}
	out := make([]event.Update, len(e.upd))
	copy(out, e.upd)
	clear(e.upd)
	e.upd = e.upd[:0]
	return out
}

// collect takes the events emitted since the last collection. The caller
// gets a fresh exact-size slice (it may retain the events indefinitely);
// the queue's backing array is cleared and truncated for reuse, so closure
// bursts grow it to their high-water mark exactly once.
func (e *ShardedEngine) collect() []event.Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.out) == 0 {
		return nil
	}
	out := make([]event.Event, len(e.out))
	copy(out, e.out)
	clear(e.out)
	e.out = e.out[:0]
	return out
}

func (e *ShardedEngine) fail(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *ShardedEngine) peekErr() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// sync flushes the partial batch and blocks until the merge stage has
// applied everything dispatched. Until the next dispatch the caller has
// exclusive (happens-before via the ack) access to the Merger and the
// shard stats snapshots.
func (e *ShardedEngine) sync() {
	if !e.running {
		return
	}
	e.dispatch(ctrlSync)
	<-e.ack
}

// publishGlobal refreshes the aggregate stream.state gauges from the
// per-shard snapshots; callable only in the post-sync quiet window.
func (e *ShardedEngine) publishGlobal() {
	streams, evs := 0, 0
	for _, ls := range e.localStats {
		streams += ls.Streams
		evs += ls.Evictions
	}
	e.met.Grouping.Streams.Set(float64(streams))
	if evs > e.evictionsPub {
		e.met.Grouping.StreamEvictions.Add(uint64(evs - e.evictionsPub))
		e.evictionsPub = evs
	}
}

// Drain flushes the partial batch, force-closes every open group, and
// returns all uncollected events, oldest first. Temporal models and
// watermarks persist, as in the serial engine.
func (e *ShardedEngine) Drain() []event.Event {
	if !e.running && e.pending == 0 {
		return nil
	}
	e.dispatch(ctrlDrain)
	<-e.ack
	e.publishGlobal()
	e.shardable.Pool().PublishLive()
	return e.collect()
}

// Close flushes nothing, drops nothing, and stops the worker goroutines;
// call Drain first if open groups should still emit. The engine rejects
// further use.
func (e *ShardedEngine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if !e.running {
		return
	}
	for k := range e.shardIn {
		close(e.shardIn[k])
	}
	close(e.mergeIn)
	e.wg.Wait()
}

// Watermark is the maximum message time observed (dispatcher view — the
// serial engine's watermark after the same Observe calls).
func (e *ShardedEngine) Watermark() time.Time { return e.lastTime }

// LowWatermark is the merge stage's progress: the punctuation of the last
// fully applied batch, ≤ every shard watermark and monotone. Safe to call
// concurrently with anything.
func (e *ShardedEngine) LowWatermark() time.Time {
	ns := e.lowWMns.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// Horizon is the closure bound.
func (e *ShardedEngine) Horizon() time.Duration { return e.shardable.Horizon() }

// ActiveRules synchronizes and returns the merge stage's cumulative
// per-pair rule-merge tally. The map is a snapshot copy; the caller may
// keep or mutate it freely.
func (e *ShardedEngine) ActiveRules() map[rules.PairKey]int {
	e.sync()
	return e.merger.ActiveRules()
}

// Stats synchronizes (flushing the partial batch) and snapshots the
// grouper state and merge counters across all shards.
func (e *ShardedEngine) Stats() grouping.IncStats {
	if !e.running {
		return grouping.IncStats{}
	}
	e.sync()
	e.publishGlobal()
	ms := e.merger.Stats()
	st := grouping.IncStats{
		OpenMessages:    ms.OpenMessages,
		OpenGroups:      ms.OpenGroups,
		TemporalMerges:  ms.TemporalMerges,
		RuleMerges:      ms.RuleMerges,
		CrossMerges:     ms.CrossMerges,
		CrossCandidates: ms.CrossCandidates,
	}
	for _, ls := range e.localStats {
		st.Streams += ls.Streams
		st.StreamEvictions += ls.Evictions
		st.RuleCandidates += ls.RuleCandidates
		st.RulePairs += ls.RulePairs
	}
	return st
}

// Pending is the number of messages in not-yet-closed groups (synchronizes
// first, so nothing is in flight when it counts).
func (e *ShardedEngine) Pending() int {
	if !e.running {
		return e.pending
	}
	e.sync()
	return e.merger.Stats().OpenMessages
}
