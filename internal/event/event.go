// Package event turns message groups into prioritized, presentable network
// events (§4.2.4).
//
// Each group from the grouping stage becomes one Event carrying its time
// span, participating routers and locations, the distinct templates
// involved, and the raw message indices for drill-down. Events are scored
//
//	score = Σ_m  l_m / log(f_m)
//
// summing over the group's messages, where l_m is the level weight of the
// message's location (router-level conditions outweigh interface-level ones
// 1000:1) and f_m is the historical frequency of the message's template on
// its router — rare signatures matter more, the logarithm keeping the very
// rare from dominating outright. Ranking is by descending score.
package event

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"sort"
	"time"

	"syslogdigest/internal/grouping"
	"syslogdigest/internal/locdict"
)

// FreqTable records how often each (router, template) signature occurred in
// the learning period; it supplies f_m during scoring.
type FreqTable struct {
	counts map[freqKey]int64
}

type freqKey struct {
	router   string
	template int
}

// NewFreqTable returns an empty table.
func NewFreqTable() *FreqTable {
	return &FreqTable{counts: make(map[freqKey]int64)}
}

// Add accumulates n occurrences of template on router.
func (f *FreqTable) Add(router string, template int, n int64) {
	f.counts[freqKey{router, template}] += n
}

// Get returns the recorded frequency (0 when never seen).
func (f *FreqTable) Get(router string, template int) int64 {
	return f.counts[freqKey{router, template}]
}

// Len returns the number of distinct (router, template) entries.
func (f *FreqTable) Len() int { return len(f.counts) }

// Entries returns all entries in deterministic order, for serialization.
func (f *FreqTable) Entries() []FreqEntry {
	out := make([]FreqEntry, 0, len(f.counts))
	for k, v := range f.counts {
		out = append(out, FreqEntry{Router: k.router, Template: k.template, Count: v})
	}
	slices.SortFunc(out, func(a, b FreqEntry) int {
		if c := cmp.Compare(a.Router, b.Router); c != 0 {
			return c
		}
		return cmp.Compare(a.Template, b.Template)
	})
	return out
}

// FreqEntry is one serializable frequency record.
type FreqEntry struct {
	Router   string `json:"router"`
	Template int    `json:"template"`
	Count    int64  `json:"count"`
}

// Event is one network event: a group of related syslog messages presented
// as a unit.
type Event struct {
	ID          int
	Start, End  time.Time
	Routers     []string           // distinct, sorted
	Locations   []locdict.Location // one presentation location per router
	Templates   []int              // distinct template IDs, sorted
	MessageSeqs []int              // batch positions of member messages
	RawIndexes  []uint64           // raw syslog indices for retrieval
	Label       string
	Score       float64
}

// Size returns the number of raw messages in the event.
func (e *Event) Size() int { return len(e.MessageSeqs) }

// Span returns the event duration.
func (e *Event) Span() time.Duration { return e.End.Sub(e.Start) }

// Builder assembles and scores events. A Builder carries per-call scratch
// reused across BuildGroup invocations, so it is single-engine state: one
// Builder per pipeline, calls serialized (exactly the discipline the stream
// engines already impose). The slices an Event retains are always freshly
// allocated at exact size — only the intermediate working sets recycle.
type Builder struct {
	freq    *FreqTable
	labeler *Labeler

	// BuildGroup scratch, cleared (not reallocated) between calls.
	routers   map[string]bool
	templates map[int]bool
	perRouter map[string][]locdict.Location
	locFree   [][]locdict.Location     // spare perRouter value backings
	counts    map[locdict.Location]int // presentationLoc tally

	// Label memoization: events overwhelmingly repeat a small set of
	// template combinations, so labels are cached by the sorted template
	// IDs. keyBuf is the reusable encoding buffer; labelGen tracks the
	// labeler's revision so SetName invalidates stale entries.
	labelCache map[string]string
	labelGen   int
	keyBuf     []byte
}

// NewBuilder creates a builder. freq may be nil (all frequencies treated as
// unseen); labeler may be nil (default heuristics).
func NewBuilder(freq *FreqTable, labeler *Labeler) *Builder {
	if freq == nil {
		freq = NewFreqTable()
	}
	if labeler == nil {
		labeler = NewLabeler(nil)
	}
	return &Builder{
		freq:       freq,
		labeler:    labeler,
		routers:    make(map[string]bool),
		templates:  make(map[int]bool),
		perRouter:  make(map[string][]locdict.Location),
		counts:     make(map[locdict.Location]int),
		labelCache: make(map[string]string),
		labelGen:   labeler.generation(),
	}
}

// Member is one message as event assembly sees it: the fields scoring and
// presentation consume. Both the batch Build path and the streaming engine
// reduce their message representations to Members before calling
// BuildGroup, so a group's event is identical however it was formed.
type Member struct {
	Seq      int
	Time     time.Time
	Router   string
	Template int
	Loc      locdict.Location
	Raw      uint64
}

// Build converts a grouping result into events, sorted by descending score
// (rank order). rawIndex maps batch Seq to the raw syslog message index; a
// nil rawIndex uses the Seq itself.
func (b *Builder) Build(msgs []grouping.Message, res *grouping.Result, rawIndex []uint64) []Event {
	bySeq := make([]*grouping.Message, len(msgs))
	for i := range msgs {
		bySeq[msgs[i].Seq] = &msgs[i]
	}
	events := make([]Event, 0, len(res.Groups))
	var members []Member
	for _, seqs := range res.Groups {
		members = members[:0]
		for _, seq := range seqs {
			m := bySeq[seq]
			if m == nil {
				continue
			}
			raw := uint64(seq)
			if rawIndex != nil {
				raw = rawIndex[seq]
			}
			members = append(members, Member{
				Seq: seq, Time: m.Time, Router: m.Router,
				Template: m.Template, Loc: m.Loc, Raw: raw,
			})
		}
		e := b.BuildGroup(members)
		e.ID = len(events)
		events = append(events, e)
	}
	Rank(events)
	for i := range events {
		events[i].ID = i
	}
	return events
}

// BuildGroup assembles, scores, and labels one group. Members must be in
// ascending Seq order: the score is a float sum over members, so the
// summation order is part of the contract — batch groups list members
// ascending and the streaming engine sorts closed groups the same way,
// which makes their scores bit-identical, not merely close. The caller
// assigns ID.
func (b *Builder) BuildGroup(members []Member) Event {
	e := Event{
		MessageSeqs: make([]int, 0, len(members)),
		RawIndexes:  make([]uint64, 0, len(members)),
	}
	for i := range members {
		m := &members[i]
		if e.Start.IsZero() || m.Time.Before(e.Start) {
			e.Start = m.Time
		}
		if m.Time.After(e.End) {
			e.End = m.Time
		}
		b.routers[m.Router] = true
		b.templates[m.Template] = true
		ls, ok := b.perRouter[m.Router]
		if !ok {
			ls = b.locBuf()
		}
		b.perRouter[m.Router] = append(ls, m.Loc)
		e.MessageSeqs = append(e.MessageSeqs, m.Seq)
		e.RawIndexes = append(e.RawIndexes, m.Raw)
		// Scoring: l_m / log(f_m). The +e guard keeps the denominator
		// at least 1 for signatures never seen in history (f = 0).
		f := float64(b.freq.Get(m.Router, m.Template))
		e.Score += m.Loc.Level.Weight() / math.Log(f+math.E)
	}
	e.Routers = make([]string, 0, len(b.routers))
	for r := range b.routers {
		e.Routers = append(e.Routers, r)
	}
	slices.Sort(e.Routers)
	e.Locations = make([]locdict.Location, 0, len(e.Routers))
	for _, r := range e.Routers {
		e.Locations = append(e.Locations, b.presentationLoc(r, b.perRouter[r]))
	}
	e.Templates = make([]int, 0, len(b.templates))
	for t := range b.templates {
		e.Templates = append(e.Templates, t)
	}
	slices.Sort(e.Templates)
	slices.Sort(e.MessageSeqs)
	slices.Sort(e.RawIndexes)
	e.Label = b.eventLabel(e.Templates)
	clear(b.routers)
	clear(b.templates)
	for _, ls := range b.perRouter {
		b.locFree = append(b.locFree, ls[:0])
	}
	clear(b.perRouter)
	return e
}

// locBuf hands out a spare location slice for a perRouter entry.
func (b *Builder) locBuf() []locdict.Location {
	if n := len(b.locFree); n > 0 {
		ls := b.locFree[n-1]
		b.locFree = b.locFree[:n-1]
		return ls
	}
	return nil
}

// eventLabel memoizes Labeler.EventLabel by the sorted distinct template
// IDs. Labels are pure functions of the template set for a fixed labeler, so
// a hit returns the identical string the labeler would have rebuilt.
func (b *Builder) eventLabel(templates []int) string {
	if g := b.labeler.generation(); g != b.labelGen {
		clear(b.labelCache)
		b.labelGen = g
	}
	b.keyBuf = b.keyBuf[:0]
	for _, id := range templates {
		b.keyBuf = binary.AppendVarint(b.keyBuf, int64(id))
	}
	if s, ok := b.labelCache[string(b.keyBuf)]; ok {
		return s
	}
	s := b.labeler.EventLabel(templates)
	b.labelCache[string(b.keyBuf)] = s
	return s
}

// presentationLoc picks a router's display location: the coarsest level
// present (a router-level message subsumes interface detail — §4.2.4), and
// among that level's locations the most common, ties broken
// lexicographically.
func (b *Builder) presentationLoc(router string, locs []locdict.Location) locdict.Location {
	best := locdict.LevelInterface
	for _, l := range locs {
		if l.Level > best {
			best = l.Level
		}
	}
	if best == locdict.LevelRouter {
		return locdict.RouterLoc(router)
	}
	clear(b.counts)
	for _, l := range locs {
		if l.Level == best {
			b.counts[l]++
		}
	}
	var pick locdict.Location
	pickN := -1
	for l, n := range b.counts {
		if n > pickN || (n == pickN && l.Key() < pick.Key()) {
			pick, pickN = l, n
		}
	}
	return pick
}

// Rank sorts events by descending score, breaking ties by earlier start and
// then by first raw index so the order is total and deterministic.
func Rank(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Score != events[j].Score {
			return events[i].Score > events[j].Score
		}
		if !events[i].Start.Equal(events[j].Start) {
			return events[i].Start.Before(events[j].Start)
		}
		fi, fj := uint64(0), uint64(0)
		if len(events[i].RawIndexes) > 0 {
			fi = events[i].RawIndexes[0]
		}
		if len(events[j].RawIndexes) > 0 {
			fj = events[j].RawIndexes[0]
		}
		return fi < fj
	})
}

// Digest renders the event as the paper's one-line presentation:
//
//	start|end|r1 Serial1/0.10/10:0 r2 Serial1/0.20/20:0|link flap, line protocol flap|16 msgs
func (e *Event) Digest() string {
	const layout = "2006-01-02 15:04:05"
	locs := ""
	for i, l := range e.Locations {
		if i > 0 {
			locs += " "
		}
		if l.Level == locdict.LevelRouter {
			locs += l.Router
		} else {
			locs += l.Router + " " + l.Name
		}
	}
	return fmt.Sprintf("%s|%s|%s|%s|%d msgs",
		e.Start.Format(layout), e.End.Format(layout), locs, e.Label, e.Size())
}
