// Package event turns message groups into prioritized, presentable network
// events (§4.2.4).
//
// Each group from the grouping stage becomes one Event carrying its time
// span, participating routers and locations, the distinct templates
// involved, and the raw message indices for drill-down. Events are scored
//
//	score = Σ_m  l_m / log(f_m)
//
// summing over the group's messages, where l_m is the level weight of the
// message's location (router-level conditions outweigh interface-level ones
// 1000:1) and f_m is the historical frequency of the message's template on
// its router — rare signatures matter more, the logarithm keeping the very
// rare from dominating outright. Ranking is by descending score.
package event

import (
	"fmt"
	"math"
	"sort"
	"time"

	"syslogdigest/internal/grouping"
	"syslogdigest/internal/locdict"
)

// FreqTable records how often each (router, template) signature occurred in
// the learning period; it supplies f_m during scoring.
type FreqTable struct {
	counts map[freqKey]int64
}

type freqKey struct {
	router   string
	template int
}

// NewFreqTable returns an empty table.
func NewFreqTable() *FreqTable {
	return &FreqTable{counts: make(map[freqKey]int64)}
}

// Add accumulates n occurrences of template on router.
func (f *FreqTable) Add(router string, template int, n int64) {
	f.counts[freqKey{router, template}] += n
}

// Get returns the recorded frequency (0 when never seen).
func (f *FreqTable) Get(router string, template int) int64 {
	return f.counts[freqKey{router, template}]
}

// Len returns the number of distinct (router, template) entries.
func (f *FreqTable) Len() int { return len(f.counts) }

// Entries returns all entries in deterministic order, for serialization.
func (f *FreqTable) Entries() []FreqEntry {
	out := make([]FreqEntry, 0, len(f.counts))
	for k, v := range f.counts {
		out = append(out, FreqEntry{Router: k.router, Template: k.template, Count: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Router != out[j].Router {
			return out[i].Router < out[j].Router
		}
		return out[i].Template < out[j].Template
	})
	return out
}

// FreqEntry is one serializable frequency record.
type FreqEntry struct {
	Router   string `json:"router"`
	Template int    `json:"template"`
	Count    int64  `json:"count"`
}

// Event is one network event: a group of related syslog messages presented
// as a unit.
type Event struct {
	ID          int
	Start, End  time.Time
	Routers     []string           // distinct, sorted
	Locations   []locdict.Location // one presentation location per router
	Templates   []int              // distinct template IDs, sorted
	MessageSeqs []int              // batch positions of member messages
	RawIndexes  []uint64           // raw syslog indices for retrieval
	Label       string
	Score       float64
}

// Size returns the number of raw messages in the event.
func (e *Event) Size() int { return len(e.MessageSeqs) }

// Span returns the event duration.
func (e *Event) Span() time.Duration { return e.End.Sub(e.Start) }

// Builder assembles and scores events.
type Builder struct {
	freq    *FreqTable
	labeler *Labeler
}

// NewBuilder creates a builder. freq may be nil (all frequencies treated as
// unseen); labeler may be nil (default heuristics).
func NewBuilder(freq *FreqTable, labeler *Labeler) *Builder {
	if freq == nil {
		freq = NewFreqTable()
	}
	if labeler == nil {
		labeler = NewLabeler(nil)
	}
	return &Builder{freq: freq, labeler: labeler}
}

// Build converts a grouping result into events, sorted by descending score
// (rank order). rawIndex maps batch Seq to the raw syslog message index; a
// nil rawIndex uses the Seq itself.
func (b *Builder) Build(msgs []grouping.Message, res *grouping.Result, rawIndex []uint64) []Event {
	bySeq := make([]*grouping.Message, len(msgs))
	for i := range msgs {
		bySeq[msgs[i].Seq] = &msgs[i]
	}
	events := make([]Event, 0, len(res.Groups))
	for _, members := range res.Groups {
		e := Event{ID: len(events)}
		routers := make(map[string]bool)
		templates := make(map[int]bool)
		perRouterLocs := make(map[string][]locdict.Location)
		for _, seq := range members {
			m := bySeq[seq]
			if m == nil {
				continue
			}
			if e.Start.IsZero() || m.Time.Before(e.Start) {
				e.Start = m.Time
			}
			if m.Time.After(e.End) {
				e.End = m.Time
			}
			routers[m.Router] = true
			templates[m.Template] = true
			perRouterLocs[m.Router] = append(perRouterLocs[m.Router], m.Loc)
			e.MessageSeqs = append(e.MessageSeqs, seq)
			if rawIndex != nil {
				e.RawIndexes = append(e.RawIndexes, rawIndex[seq])
			} else {
				e.RawIndexes = append(e.RawIndexes, uint64(seq))
			}
			// Scoring: l_m / log(f_m). The +e guard keeps the denominator
			// at least 1 for signatures never seen in history (f = 0).
			f := float64(b.freq.Get(m.Router, m.Template))
			e.Score += m.Loc.Level.Weight() / math.Log(f+math.E)
		}
		for r := range routers {
			e.Routers = append(e.Routers, r)
		}
		sort.Strings(e.Routers)
		for _, r := range e.Routers {
			e.Locations = append(e.Locations, presentationLoc(r, perRouterLocs[r]))
		}
		for t := range templates {
			e.Templates = append(e.Templates, t)
		}
		sort.Ints(e.Templates)
		sort.Ints(e.MessageSeqs)
		sort.Slice(e.RawIndexes, func(i, j int) bool { return e.RawIndexes[i] < e.RawIndexes[j] })
		e.Label = b.labeler.EventLabel(e.Templates)
		events = append(events, e)
	}
	Rank(events)
	for i := range events {
		events[i].ID = i
	}
	return events
}

// presentationLoc picks a router's display location: the coarsest level
// present (a router-level message subsumes interface detail — §4.2.4), and
// among that level's locations the most common, ties broken
// lexicographically.
func presentationLoc(router string, locs []locdict.Location) locdict.Location {
	best := locdict.LevelInterface
	for _, l := range locs {
		if l.Level > best {
			best = l.Level
		}
	}
	if best == locdict.LevelRouter {
		return locdict.RouterLoc(router)
	}
	counts := make(map[locdict.Location]int)
	for _, l := range locs {
		if l.Level == best {
			counts[l]++
		}
	}
	var pick locdict.Location
	pickN := -1
	for l, n := range counts {
		if n > pickN || (n == pickN && l.Key() < pick.Key()) {
			pick, pickN = l, n
		}
	}
	return pick
}

// Rank sorts events by descending score, breaking ties by earlier start and
// then by first raw index so the order is total and deterministic.
func Rank(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Score != events[j].Score {
			return events[i].Score > events[j].Score
		}
		if !events[i].Start.Equal(events[j].Start) {
			return events[i].Start.Before(events[j].Start)
		}
		fi, fj := uint64(0), uint64(0)
		if len(events[i].RawIndexes) > 0 {
			fi = events[i].RawIndexes[0]
		}
		if len(events[j].RawIndexes) > 0 {
			fj = events[j].RawIndexes[0]
		}
		return fi < fj
	})
}

// Digest renders the event as the paper's one-line presentation:
//
//	start|end|r1 Serial1/0.10/10:0 r2 Serial1/0.20/20:0|link flap, line protocol flap|16 msgs
func (e *Event) Digest() string {
	const layout = "2006-01-02 15:04:05"
	locs := ""
	for i, l := range e.Locations {
		if i > 0 {
			locs += " "
		}
		if l.Level == locdict.LevelRouter {
			locs += l.Router
		} else {
			locs += l.Router + " " + l.Name
		}
	}
	return fmt.Sprintf("%s|%s|%s|%s|%d msgs",
		e.Start.Format(layout), e.End.Format(layout), locs, e.Label, e.Size())
}
