// Two-tier emission (PR 9): the provisional face of the event stream.
//
// The closure rule proves an event complete only after the watermark passes
// its last message by the full closure horizon — hours at the paper's
// defaults. Operations want a signal sooner, so the streaming engines can
// additionally publish each group as a *provisional* event shortly after it
// is born, revise it as members arrive, mark it superseded when a
// union-find merge absorbs it into another event, and finally flip it to
// final when the group closes. Every tier-tagged record is an Update; the
// final-tier event stream (the plain []Event the engines always returned)
// is byte-identical whether or not the provisional tier is enabled.
package event

import (
	"encoding/json"
	"fmt"
	"io"
)

// Status is the tier of one Update.
type Status uint8

const (
	// StatusProvisional is the first publication of an event: the group is
	// past the provisional horizon and still open.
	StatusProvisional Status = iota
	// StatusRevised replaces an earlier publication of the same EventID
	// with a grown membership.
	StatusRevised
	// StatusSuperseded retires an EventID: a merge absorbed its group into
	// SupersededBy, which carries the combined membership from now on.
	StatusSuperseded
	// StatusFinal is the closure of an EventID; Event is the exact event
	// the engine's final stream emitted.
	StatusFinal
)

// String renders the status for display and the JSON wire form.
func (s Status) String() string {
	switch s {
	case StatusProvisional:
		return "provisional"
	case StatusRevised:
		return "revised"
	case StatusSuperseded:
		return "superseded"
	case StatusFinal:
		return "final"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// StatusFromString reverses Status.String for import tooling and the
// checkpoint codec.
func StatusFromString(s string) (Status, bool) {
	switch s {
	case "provisional":
		return StatusProvisional, true
	case "revised":
		return StatusRevised, true
	case "superseded":
		return StatusSuperseded, true
	case "final":
		return StatusFinal, true
	}
	return 0, false
}

// Update is one tier-tagged emission of the two-tier stream.
//
// EventID is the stable identity assigned when the group was born; it
// survives growth and merges (the merge winner keeps its ID, the loser is
// retired with a StatusSuperseded update pointing at the winner). Revision
// counts publications of this EventID, starting at 0 for the provisional
// record; the final (or superseding) update carries the highest revision.
//
// Event is the scored, labeled snapshot of the membership at publication.
// For provisional and revised updates its ID field is -1 — the sequential
// final-stream ID is only assigned at closure; a StatusFinal update wraps
// the exact final event, ID included. A StatusSuperseded update carries no
// snapshot (the membership moved to SupersededBy), so Event is zero.
type Update struct {
	EventID      uint64
	Revision     int
	Status       Status
	SupersededBy uint64 // set only for StatusSuperseded
	Event        Event
}

// Digest renders the update as one line for terminals and logs: the tier
// tag with identity and revision, then the event digest (or the absorbing
// identity for a superseded record) — the two-tier counterpart of
// Event.Digest.
func (u *Update) Digest() string {
	if u.Status == StatusSuperseded {
		return fmt.Sprintf("[%s #%d rev%d -> #%d]", u.Status, u.EventID, u.Revision, u.SupersededBy)
	}
	return fmt.Sprintf("[%s #%d rev%d] %s", u.Status, u.EventID, u.Revision, u.Event.Digest())
}

// updateJSON is the wire form of one update.
type updateJSON struct {
	EventID      uint64          `json:"event_id"`
	Revision     int             `json:"revision"`
	Status       string          `json:"status"`
	SupersededBy uint64          `json:"superseded_by,omitempty"`
	Event        json.RawMessage `json:"event,omitempty"`
}

// MarshalJSON renders the update in its export form.
func (u Update) MarshalJSON() ([]byte, error) {
	out := updateJSON{
		EventID:      u.EventID,
		Revision:     u.Revision,
		Status:       u.Status.String(),
		SupersededBy: u.SupersededBy,
	}
	if u.Status != StatusSuperseded {
		raw, err := json.Marshal(u.Event)
		if err != nil {
			return nil, err
		}
		out.Event = raw
	}
	return json.Marshal(out)
}

// UnmarshalJSON parses the export form back into an Update.
func (u *Update) UnmarshalJSON(data []byte) error {
	var in updateJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	st, ok := StatusFromString(in.Status)
	if !ok {
		return fmt.Errorf("event: unknown update status %q", in.Status)
	}
	*u = Update{
		EventID:      in.EventID,
		Revision:     in.Revision,
		Status:       st,
		SupersededBy: in.SupersededBy,
	}
	if len(in.Event) > 0 {
		if err := json.Unmarshal(in.Event, &u.Event); err != nil {
			return err
		}
	}
	return nil
}

// WriteUpdatesJSON writes updates as newline-delimited JSON, mirroring
// WriteJSON for the final stream.
func WriteUpdatesJSON(w io.Writer, updates []Update) error {
	enc := json.NewEncoder(w)
	for i := range updates {
		if err := enc.Encode(updates[i]); err != nil {
			return err
		}
	}
	return nil
}
