package event

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"syslogdigest/internal/grouping"
	"syslogdigest/internal/locdict"
)

// Property tests on event assembly and ranking.

func randomGrouping(rng *rand.Rand, n int) ([]grouping.Message, *grouping.Result) {
	base := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	routers := []string{"r1", "r2", "r3"}
	msgs := make([]grouping.Message, n)
	for i := range msgs {
		r := routers[rng.Intn(len(routers))]
		loc := locdict.RouterLoc(r)
		if rng.Intn(2) == 0 {
			loc = locdict.IntfLoc(r, "Serial1/0/1:0")
		}
		msgs[i] = grouping.Message{
			Seq: i, Time: base.Add(time.Duration(rng.Intn(3600)) * time.Second),
			Router: r, Template: rng.Intn(5), Loc: loc,
		}
	}
	// Random partition.
	groups := rng.Intn(n) + 1
	res := &grouping.Result{GroupOf: make([]int, n), Groups: make([][]int, groups)}
	for i := range msgs {
		g := rng.Intn(groups)
		res.GroupOf[i] = g
		res.Groups[g] = append(res.Groups[g], i)
	}
	// Drop empty groups to keep ids dense.
	var dense [][]int
	remap := make(map[int]int)
	for g, members := range res.Groups {
		if len(members) > 0 {
			remap[g] = len(dense)
			dense = append(dense, members)
		}
	}
	for i := range res.GroupOf {
		res.GroupOf[i] = remap[res.GroupOf[i]]
	}
	res.Groups = dense
	return msgs, res
}

// Property: Build conserves messages, spans cover members, and the output
// is rank-sorted with sequential IDs.
func TestBuildInvariantsQuick(t *testing.T) {
	b := NewBuilder(nil, nil)
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%60) + 1
		msgs, res := randomGrouping(rng, n)
		events := b.Build(msgs, res, nil)
		if len(events) != len(res.Groups) {
			return false
		}
		total := 0
		prev := events[0].Score
		for i, e := range events {
			total += e.Size()
			if e.ID != i {
				return false
			}
			if e.Score > prev+1e-12 {
				return false
			}
			prev = e.Score
			if e.End.Before(e.Start) {
				return false
			}
			if len(e.Routers) == 0 || len(e.Locations) != len(e.Routers) {
				return false
			}
			// Every member's time within [Start, End].
			for _, seq := range e.MessageSeqs {
				tm := msgs[seq].Time
				if tm.Before(e.Start) || tm.After(e.End) {
					return false
				}
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Rank is idempotent and permutation-invariant.
func TestRankStableQuick(t *testing.T) {
	b := NewBuilder(nil, nil)
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%40) + 2
		msgs, res := randomGrouping(rng, n)
		events := b.Build(msgs, res, nil)

		again := append([]Event(nil), events...)
		Rank(again)
		for i := range events {
			if events[i].ID != again[i].ID {
				return false
			}
		}
		shuffled := append([]Event(nil), events...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		Rank(shuffled)
		for i := range events {
			if events[i].ID != shuffled[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
