package event

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"syslogdigest/internal/grouping"
	"syslogdigest/internal/locdict"
	"syslogdigest/internal/template"
)

var t0 = time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)

func flapTemplates() []template.Template {
	return []template.Template{
		template.MustTemplate(1, "LINK-3-UPDOWN|Interface *, changed state to down"),
		template.MustTemplate(2, "LINEPROTO-5-UPDOWN|Line protocol on Interface *, changed state to down"),
		template.MustTemplate(3, "LINK-3-UPDOWN|Interface *, changed state to up"),
		template.MustTemplate(4, "LINEPROTO-5-UPDOWN|Line protocol on Interface *, changed state to up"),
		template.MustTemplate(5, "SYS-1-CPURISINGTHRESHOLD|Threshold: Total CPU Utilization(Total/Intr): *"),
		template.MustTemplate(6, "BGP-5-ADJCHANGE|neighbor * vpn vrf * Down Peer closed the session"),
		template.MustTemplate(7, "PIM-5-NBRCHG|neighbor * Down"),
	}
}

func toyBatch() ([]grouping.Message, *grouping.Result) {
	l1 := locdict.IntfLoc("r1", "Serial1/0.10/10:0")
	l2 := locdict.IntfLoc("r2", "Serial1/0.20/20:0")
	msgs := []grouping.Message{
		{Seq: 0, Time: t0, Router: "r1", Template: 1, Loc: l1},
		{Seq: 1, Time: t0, Router: "r2", Template: 1, Loc: l2},
		{Seq: 2, Time: t0.Add(time.Second), Router: "r1", Template: 2, Loc: l1},
		{Seq: 3, Time: t0.Add(31 * time.Second), Router: "r1", Template: 3, Loc: l1},
		// A separate router-level CPU event.
		{Seq: 4, Time: t0.Add(time.Hour), Router: "r9", Template: 5, Loc: locdict.RouterLoc("r9")},
	}
	res := &grouping.Result{
		GroupOf: []int{0, 0, 0, 0, 1},
		Groups:  [][]int{{0, 1, 2, 3}, {4}},
	}
	return msgs, res
}

func TestBuildAssemblesEvent(t *testing.T) {
	msgs, res := toyBatch()
	b := NewBuilder(nil, NewLabeler(flapTemplates()))
	events := b.Build(msgs, res, []uint64{100, 101, 102, 103, 104})
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	// Find the flap event (4 messages).
	var flap, cpu *Event
	for i := range events {
		if events[i].Size() == 4 {
			flap = &events[i]
		} else {
			cpu = &events[i]
		}
	}
	if flap == nil || cpu == nil {
		t.Fatalf("events malformed: %+v", events)
	}
	if !flap.Start.Equal(t0) || !flap.End.Equal(t0.Add(31*time.Second)) {
		t.Fatalf("span = %v..%v", flap.Start, flap.End)
	}
	if flap.Span() != 31*time.Second {
		t.Fatalf("Span = %v", flap.Span())
	}
	if strings.Join(flap.Routers, ",") != "r1,r2" {
		t.Fatalf("Routers = %v", flap.Routers)
	}
	if len(flap.Templates) != 3 || flap.Templates[0] != 1 {
		t.Fatalf("Templates = %v", flap.Templates)
	}
	if flap.RawIndexes[0] != 100 || flap.RawIndexes[3] != 103 {
		t.Fatalf("RawIndexes = %v", flap.RawIndexes)
	}
	// IDs follow rank order.
	if events[0].ID != 0 || events[1].ID != 1 {
		t.Fatalf("IDs not rank-ordered: %d, %d", events[0].ID, events[1].ID)
	}
}

func TestScoringRareAndHighLevelWins(t *testing.T) {
	freq := NewFreqTable()
	freq.Add("r1", 1, 100000) // template 1 is common on r1
	freq.Add("r9", 5, 2)      // template 5 is rare on r9

	msgs := []grouping.Message{
		{Seq: 0, Time: t0, Router: "r1", Template: 1, Loc: locdict.IntfLoc("r1", "Serial1/0/1:0")},
		{Seq: 1, Time: t0, Router: "r9", Template: 5, Loc: locdict.RouterLoc("r9")},
	}
	res := &grouping.Result{GroupOf: []int{0, 1}, Groups: [][]int{{0}, {1}}}
	b := NewBuilder(freq, NewLabeler(flapTemplates()))
	events := b.Build(msgs, res, nil)
	// The rare, router-level event must rank first.
	if events[0].Routers[0] != "r9" {
		t.Fatalf("rank order wrong: %+v", events)
	}
	if events[0].Score <= events[1].Score {
		t.Fatalf("scores not ordered: %v <= %v", events[0].Score, events[1].Score)
	}
	// Spot-check the formula: l/log(f+e) for the interface message.
	want := 1.0 / math.Log(100000+math.E)
	if diff := math.Abs(events[1].Score - want); diff > 1e-9 {
		t.Fatalf("score = %v, want %v", events[1].Score, want)
	}
}

func TestScoreSizeMatters(t *testing.T) {
	// More messages, higher score (severity proxy).
	loc := locdict.IntfLoc("r1", "Serial1/0/1:0")
	var msgs []grouping.Message
	for i := 0; i < 5; i++ {
		msgs = append(msgs, grouping.Message{Seq: i, Time: t0, Router: "r1", Template: 1, Loc: loc})
	}
	res := &grouping.Result{GroupOf: []int{0, 0, 0, 0, 1}, Groups: [][]int{{0, 1, 2, 3}, {4}}}
	events := NewBuilder(nil, nil).Build(msgs, res, nil)
	if events[0].Size() != 4 {
		t.Fatalf("larger group should rank first: %+v", events)
	}
	if events[0].Score != 4*events[1].Score {
		t.Fatalf("score should scale with size: %v vs %v", events[0].Score, events[1].Score)
	}
}

func TestPresentationLocCoarsestWins(t *testing.T) {
	locs := []locdict.Location{
		locdict.IntfLoc("r1", "Serial1/0/1:0"),
		locdict.RouterLoc("r1"),
		locdict.IntfLoc("r1", "Serial1/0/2:0"),
	}
	got := NewBuilder(nil, nil).presentationLoc("r1", locs)
	if got != locdict.RouterLoc("r1") {
		t.Fatalf("presentationLoc = %v, want router level", got)
	}
	// Without the router-level message, the most common interface shows.
	locs = []locdict.Location{
		locdict.IntfLoc("r1", "Serial1/0/1:0"),
		locdict.IntfLoc("r1", "Serial1/0/2:0"),
		locdict.IntfLoc("r1", "Serial1/0/1:0"),
	}
	got = NewBuilder(nil, nil).presentationLoc("r1", locs)
	if got.Name != "Serial1/0/1:0" {
		t.Fatalf("presentationLoc = %v", got)
	}
}

func TestDigestFormat(t *testing.T) {
	msgs, res := toyBatch()
	b := NewBuilder(nil, NewLabeler(flapTemplates()))
	events := b.Build(msgs, res, nil)
	var flap *Event
	for i := range events {
		if events[i].Size() == 4 {
			flap = &events[i]
		}
	}
	d := flap.Digest()
	parts := strings.Split(d, "|")
	if len(parts) != 5 {
		t.Fatalf("digest fields = %d: %q", len(parts), d)
	}
	if parts[0] != "2010-01-10 00:00:00" || parts[1] != "2010-01-10 00:00:31" {
		t.Fatalf("digest times wrong: %q", d)
	}
	if !strings.Contains(parts[2], "r1 Serial1/0.10/10:0") || !strings.Contains(parts[2], "r2 Serial1/0.20/20:0") {
		t.Fatalf("digest locations wrong: %q", parts[2])
	}
	if !strings.Contains(parts[3], "link flap") {
		t.Fatalf("digest label = %q, want link flap", parts[3])
	}
	if parts[4] != "4 msgs" {
		t.Fatalf("digest size field = %q", parts[4])
	}
}

func TestLabelerFlapCollapse(t *testing.T) {
	l := NewLabeler(flapTemplates())
	got := l.EventLabel([]int{1, 2, 3, 4})
	if got != "line protocol flap, link flap" {
		t.Fatalf("EventLabel = %q", got)
	}
}

func TestLabelerTemplateNames(t *testing.T) {
	l := NewLabeler(flapTemplates())
	cases := map[int]string{
		1: "link down",
		3: "link up",
		5: "system high",
		6: "bgp session down",
		7: "pim neighbor down",
	}
	for id, want := range cases {
		if got := l.TemplateName(id); got != want {
			t.Errorf("TemplateName(%d) = %q, want %q", id, got, want)
		}
	}
	if got := l.TemplateName(99); got != "signature 99" {
		t.Errorf("unknown template name = %q", got)
	}
}

func TestLabelerCustomOverride(t *testing.T) {
	l := NewLabeler(flapTemplates())
	l.SetName(6, "vpn peer loss")
	if got := l.TemplateName(6); got != "vpn peer loss" {
		t.Fatalf("override = %q", got)
	}
	if got := l.EventLabel([]int{6}); got != "vpn peer loss" {
		t.Fatalf("EventLabel with override = %q", got)
	}
}

func TestFreqTable(t *testing.T) {
	f := NewFreqTable()
	f.Add("r1", 1, 5)
	f.Add("r1", 1, 3)
	f.Add("r2", 1, 7)
	if f.Get("r1", 1) != 8 || f.Get("r2", 1) != 7 || f.Get("r3", 1) != 0 {
		t.Fatal("counts wrong")
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d", f.Len())
	}
	es := f.Entries()
	if len(es) != 2 || es[0].Router != "r1" || es[1].Router != "r2" {
		t.Fatalf("Entries = %+v", es)
	}
}

func TestRankDeterministicTies(t *testing.T) {
	a := Event{Score: 1, Start: t0, RawIndexes: []uint64{5}}
	b := Event{Score: 1, Start: t0, RawIndexes: []uint64{2}}
	evs := []Event{a, b}
	Rank(evs)
	if evs[0].RawIndexes[0] != 2 {
		t.Fatalf("tie-break by raw index failed: %+v", evs)
	}
}

func TestItoa(t *testing.T) {
	for n, want := range map[int]string{0: "0", 7: "7", 42: "42", -3: "-3", 1234: "1234"} {
		if got := itoa(n); got != want {
			t.Errorf("itoa(%d) = %q", n, got)
		}
	}
}

// TestBuildGroupMatchesBuild: assembling groups one at a time through the
// streaming entry point yields exactly the events the batch Build produces
// (before ranking renumbers them) — same scores, labels, spans, members.
func TestBuildGroupMatchesBuild(t *testing.T) {
	msgs, res := toyBatch()
	raw := []uint64{100, 101, 102, 103, 104}
	b := NewBuilder(nil, NewLabeler(flapTemplates()))
	batch := b.Build(msgs, res, raw)

	b2 := NewBuilder(nil, NewLabeler(flapTemplates()))
	var single []Event
	for _, group := range res.Groups {
		members := make([]Member, 0, len(group))
		for _, seq := range group {
			m := msgs[seq]
			members = append(members, Member{
				Seq: m.Seq, Time: m.Time, Router: m.Router,
				Template: m.Template, Loc: m.Loc, Raw: raw[seq],
			})
		}
		single = append(single, b2.BuildGroup(members))
	}
	Rank(single)
	for i := range single {
		single[i].ID = i
	}

	if len(single) != len(batch) {
		t.Fatalf("events: %d vs %d", len(single), len(batch))
	}
	for i := range single {
		if !reflect.DeepEqual(single[i], batch[i]) {
			t.Fatalf("event %d differs:\ngroup: %+v\nbatch: %+v", i, single[i], batch[i])
		}
	}
}
