package event

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"syslogdigest/internal/locdict"
)

func sampleEvent() Event {
	t0 := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	return Event{
		ID:    3,
		Start: t0, End: t0.Add(31 * time.Second),
		Label: "link flap", Score: 12.5,
		Routers: []string{"r1", "r2"},
		Locations: []locdict.Location{
			locdict.IntfLoc("r1", "Serial1/0.10/10:0"),
			locdict.RouterLoc("r2"),
		},
		Templates:   []int{1, 2, 3},
		MessageSeqs: []int{0, 1, 2, 3},
		RawIndexes:  []uint64{100, 101, 102, 103},
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	in := sampleEvent()
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Event
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Label != in.Label || out.Score != in.Score {
		t.Fatalf("identity drift: %+v", out)
	}
	if !out.Start.Equal(in.Start) || !out.End.Equal(in.End) {
		t.Fatalf("span drift: %v..%v", out.Start, out.End)
	}
	if len(out.Routers) != 2 || len(out.Templates) != 3 || len(out.RawIndexes) != 4 {
		t.Fatalf("fields drift: %+v", out)
	}
	if out.Size() != in.Size() {
		t.Fatalf("Size drift: %d != %d", out.Size(), in.Size())
	}
	if out.Locations[0] != in.Locations[0] || out.Locations[1] != in.Locations[1] {
		t.Fatalf("locations drift: %+v", out.Locations)
	}
}

func TestEventJSONFields(t *testing.T) {
	data, err := json.Marshal(sampleEvent())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"id", "start", "end", "label", "score", "routers", "locations", "templates", "messages", "raw_indices"} {
		if _, ok := m[field]; !ok {
			t.Errorf("export missing field %q", field)
		}
	}
	if m["messages"].(float64) != 4 {
		t.Fatalf("messages = %v", m["messages"])
	}
	locs := m["locations"].([]any)
	first := locs[0].(map[string]any)
	if first["level"] != "interface" || first["router"] != "r1" {
		t.Fatalf("location export = %v", first)
	}
	// Router-level location omits the empty name.
	second := locs[1].(map[string]any)
	if _, ok := second["name"]; ok {
		t.Fatalf("router-level location carries a name: %v", second)
	}
}

func TestWriteJSONNDJSON(t *testing.T) {
	events := []Event{sampleEvent(), sampleEvent()}
	events[1].ID = 4
	var buf bytes.Buffer
	if err := WriteJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v", lines+1, err)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("NDJSON lines = %d", lines)
	}
}

func TestLevelFromString(t *testing.T) {
	for _, l := range []locdict.Level{locdict.LevelInterface, locdict.LevelPort, locdict.LevelSlot, locdict.LevelRouter} {
		back, ok := levelFromString(l.String())
		if !ok || back != l {
			t.Errorf("level round trip failed for %v", l)
		}
	}
	if _, ok := levelFromString("bogus"); ok {
		t.Error("bogus level accepted")
	}
}
