package event

import (
	"sort"
	"strings"

	"syslogdigest/internal/syslogmsg"
	"syslogdigest/internal/template"
)

// Labeler names templates and events. The paper's presentation shows "the
// combinations of message signatures within the group" with optional expert
// naming ("link flap" for a group containing LINK-DOWN and LINK-UP); this
// labeler provides vendor-agnostic heuristic names plus an override hook
// for exactly that expert input.
type Labeler struct {
	templates map[int]template.Template
	custom    map[int]string
	gen       int // bumped by SetName so Builder label caches invalidate
}

// NewLabeler indexes the learned templates. A nil slice is allowed —
// unknown template IDs are labeled "signature <id>".
func NewLabeler(templates []template.Template) *Labeler {
	l := &Labeler{
		templates: make(map[int]template.Template, len(templates)),
		custom:    make(map[int]string),
	}
	for _, t := range templates {
		l.templates[t.ID] = t
	}
	return l
}

// SetName registers an expert-provided name for one template.
func (l *Labeler) SetName(id int, name string) {
	l.custom[id] = name
	l.gen++
}

// generation identifies the labeler's naming revision; it changes whenever
// an override is installed, letting callers invalidate memoized labels.
func (l *Labeler) generation() int { return l.gen }

// subjects maps code facilities/modules to human subjects.
var subjects = map[string]string{
	"LINK":       "link",
	"LINEPROTO":  "line protocol",
	"BGP":        "bgp session",
	"OSPF":       "ospf adjacency",
	"ISIS":       "isis adjacency",
	"PIM":        "pim neighbor",
	"LDP":        "ldp session",
	"CONTROLLER": "controller",
	"SNMP":       "link",
	"SVCMGR":     "sap",
	"MPLS":       "mpls tunnel",
	"MPLS_TE":    "mpls tunnel",
	"ENV":        "environment",
	"ENVMON":     "environment",
	"SYS":        "system",
	"SEC":        "security",
	"TCP":        "tcp",
	"SSH":        "ssh",
	"FTP":        "ftp",
	"PLATFORM":   "linecard",
	"CHASSIS":    "chassis",
	"TUNNEL":     "tunnel",
}

// TemplateName returns the short name for one template ID.
func (l *Labeler) TemplateName(id int) string {
	if n, ok := l.custom[id]; ok {
		return n
	}
	t, ok := l.templates[id]
	if !ok {
		return "signature " + itoa(id)
	}
	info := syslogmsg.ParseCode(t.Code)
	subject := subjects[strings.ToUpper(info.Facility)]
	if subject == "" {
		subject = strings.ToLower(info.Facility)
	}
	if subject == "" {
		subject = strings.ToLower(t.Code)
	}
	switch classifyState(t) {
	case stateDown:
		return subject + " down"
	case stateUp:
		return subject + " up"
	case stateHigh:
		return subject + " high"
	case stateNormal:
		return subject + " normal"
	case stateFail:
		return subject + " failure"
	case stateRetry:
		return subject + " retry"
	}
	// Fall back to the mnemonic, e.g. "system CONFIG_I".
	if info.Mnemonic != "" && info.Mnemonic != t.Code {
		return subject + " " + strings.ToLower(info.Mnemonic)
	}
	return subject
}

type state int

const (
	stateOther state = iota
	stateDown
	stateUp
	stateHigh
	stateNormal
	stateFail
	stateRetry
)

// classifyState inspects the template's words and code for a state hint.
func classifyState(t template.Template) state {
	joined := strings.ToLower(strings.Join(t.Words, " "))
	mn := strings.ToLower(t.Code)
	switch {
	case strings.Contains(joined, "not operational"):
		return stateDown
	case strings.Contains(mn, "rising"):
		return stateHigh
	case strings.Contains(mn, "falling"):
		return stateNormal
	case hasWord(joined, "down") || hasWord(joined, "dropped") || hasWord(joined, "lost") ||
		hasWord(joined, "idle") || strings.Contains(mn, "linkdown"):
		return stateDown
	case hasWord(joined, "up") || hasWord(joined, "established") || hasWord(joined, "restored") ||
		strings.Contains(joined, "loading done") || strings.Contains(joined, "operational") ||
		strings.Contains(mn, "linkup"):
		return stateUp
	case strings.Contains(joined, "retry") || strings.Contains(joined, "retrying"):
		return stateRetry
	case strings.Contains(joined, "fail") || strings.Contains(joined, "failed") ||
		strings.Contains(joined, "invalid") || strings.Contains(joined, "bad"):
		return stateFail
	}
	return stateOther
}

func hasWord(s, w string) bool {
	for _, tok := range strings.Fields(s) {
		tok = strings.Trim(tok, ",.:;()")
		if tok == w {
			return true
		}
	}
	return false
}

// EventLabel names an event from its distinct template IDs: per-template
// names are computed, "<subject> down" + "<subject> up" pairs collapse to
// "<subject> flap", and the distinct names are joined sorted.
func (l *Labeler) EventLabel(templateIDs []int) string {
	names := make(map[string]bool)
	for _, id := range templateIDs {
		names[l.TemplateName(id)] = true
	}
	// Collapse down+up into flap.
	for n := range names {
		if subject, ok := strings.CutSuffix(n, " down"); ok && names[subject+" up"] {
			delete(names, subject+" down")
			delete(names, subject+" up")
			names[subject+" flap"] = true
		}
	}
	out := make([]string, 0, len(names))
	for n := range names {
		out = append(out, n)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
