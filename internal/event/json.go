package event

import (
	"encoding/json"
	"io"
	"time"

	"syslogdigest/internal/locdict"
)

// JSON export: the machine-readable face of the digest, for feeding events
// into ticketing, visualization, or correlation systems (the paper's §6
// applications consume digests programmatically).

// eventJSON is the wire form of one event.
type eventJSON struct {
	ID        int            `json:"id"`
	Start     time.Time      `json:"start"`
	End       time.Time      `json:"end"`
	Label     string         `json:"label"`
	Score     float64        `json:"score"`
	Routers   []string       `json:"routers"`
	Locations []locationJSON `json:"locations"`
	Templates []int          `json:"templates"`
	Messages  int            `json:"messages"`
	RawIndex  []uint64       `json:"raw_indices"`
}

type locationJSON struct {
	Router string `json:"router"`
	Level  string `json:"level"`
	Name   string `json:"name,omitempty"`
}

// MarshalJSON renders the event in its export form.
func (e Event) MarshalJSON() ([]byte, error) {
	out := eventJSON{
		ID:        e.ID,
		Start:     e.Start.UTC(),
		End:       e.End.UTC(),
		Label:     e.Label,
		Score:     e.Score,
		Routers:   e.Routers,
		Templates: e.Templates,
		Messages:  e.Size(),
		RawIndex:  e.RawIndexes,
	}
	for _, l := range e.Locations {
		out.Locations = append(out.Locations, locationJSON{
			Router: l.Router, Level: l.Level.String(), Name: l.Name,
		})
	}
	return json.Marshal(out)
}

// WriteJSON writes events as newline-delimited JSON (one event per line),
// the friendliest shape for log pipelines.
func WriteJSON(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for i := range events {
		if err := enc.Encode(events[i]); err != nil {
			return err
		}
	}
	return nil
}

// levelFromString reverses Level.String for import tooling.
func levelFromString(s string) (locdict.Level, bool) {
	switch s {
	case "interface":
		return locdict.LevelInterface, true
	case "port":
		return locdict.LevelPort, true
	case "slot":
		return locdict.LevelSlot, true
	case "router":
		return locdict.LevelRouter, true
	}
	return 0, false
}

// UnmarshalJSON parses the export form back into an Event (used by
// downstream tooling and tests; RawIndexes and MessageSeqs are restored as
// far as the wire form carries them).
func (e *Event) UnmarshalJSON(data []byte) error {
	var in eventJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*e = Event{
		ID:         in.ID,
		Start:      in.Start,
		End:        in.End,
		Label:      in.Label,
		Score:      in.Score,
		Routers:    in.Routers,
		Templates:  in.Templates,
		RawIndexes: in.RawIndex,
	}
	for _, l := range in.Locations {
		lvl, ok := levelFromString(l.Level)
		if !ok {
			lvl = locdict.LevelRouter
		}
		e.Locations = append(e.Locations, locdict.Location{Router: l.Router, Level: lvl, Name: l.Name})
	}
	// MessageSeqs are batch-local and not exported; reconstruct a
	// placeholder of matching size so Size() stays truthful.
	e.MessageSeqs = make([]int, in.Messages)
	for i := range e.MessageSeqs {
		e.MessageSeqs[i] = i
	}
	return nil
}
