// Quickstart: the paper's running example end to end, using only the public
// API.
//
// Table 2 of the paper shows 16 raw syslog messages produced by one flapping
// link between routers r1 and r2. This example learns SyslogDigest's domain
// knowledge from a small synthetic history of such flaps, then digests the
// exact 16 messages — which come out as ONE network event, presented the way
// §3.2 shows:
//
//	start|end|r1 Serial1/0.10/10:0 r2 Serial1/0.20/20:0|line protocol flap, link flap|16 msgs
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"syslogdigest"
)

// configR1 and configR2 are the two routers' configs in the V1 dialect; the
// location dictionary (interfaces, the /30 that connects them) is built from
// these.
const configR1 = `hostname r1
! region TX
interface Loopback0
 ip address 192.168.0.1 255.255.255.255
!
interface Serial1/0.10/10:0
 description link to r2 Serial1/0.20/20:0
 ip address 10.0.0.1 255.255.255.252
!
`

const configR2 = `hostname r2
! region TX
interface Loopback0
 ip address 192.168.0.2 255.255.255.255
!
interface Serial1/0.20/20:0
 description link to r1 Serial1/0.10/10:0
 ip address 10.0.0.2 255.255.255.252
!
`

// flapEpisode emits one down/up flap cycle at t, in the exact format of the
// paper's Table 2.
func flapEpisode(t time.Time) []syslogdigest.Message {
	line := func(off time.Duration, router, code, detail string) syslogdigest.Message {
		return syslogdigest.Message{Time: t.Add(off), Router: router, Code: code, Detail: detail}
	}
	return []syslogdigest.Message{
		line(0, "r1", "LINK-3-UPDOWN", "Interface Serial1/0.10/10:0, changed state to down"),
		line(0, "r2", "LINK-3-UPDOWN", "Interface Serial1/0.20/20:0, changed state to down"),
		line(time.Second, "r1", "LINEPROTO-5-UPDOWN", "Line protocol on Interface Serial1/0.10/10:0, changed state to down"),
		line(time.Second, "r2", "LINEPROTO-5-UPDOWN", "Line protocol on Interface Serial1/0.20/20:0, changed state to down"),
		line(10*time.Second, "r1", "LINK-3-UPDOWN", "Interface Serial1/0.10/10:0, changed state to up"),
		line(10*time.Second, "r2", "LINK-3-UPDOWN", "Interface Serial1/0.20/20:0, changed state to up"),
		line(11*time.Second, "r1", "LINEPROTO-5-UPDOWN", "Line protocol on Interface Serial1/0.10/10:0, changed state to up"),
		line(11*time.Second, "r2", "LINEPROTO-5-UPDOWN", "Line protocol on Interface Serial1/0.20/20:0, changed state to up"),
	}
}

func main() {
	r1, err := syslogdigest.ParseConfig(configR1)
	if err != nil {
		log.Fatal(err)
	}
	r2, err := syslogdigest.ParseConfig(configR2)
	if err != nil {
		log.Fatal(err)
	}

	// Offline: learn templates, temporal patterns, and association rules
	// from history — here, sixty past flap episodes hours apart.
	history := make([]syslogdigest.Message, 0, 60*8)
	base := time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 60; i++ {
		history = append(history, flapEpisode(base.Add(time.Duration(i)*4*time.Hour))...)
	}
	params := syslogdigest.DefaultParams()
	params.Rules.SPmin = 0.01 // tiny corpus: keep support meaningful
	kb, err := syslogdigest.NewLearner(params).Learn(history, []*syslogdigest.RouterConfig{r1, r2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned %d templates and %d association rules, e.g.:\n", len(kb.Templates), kb.RuleBase.Len())
	for _, t := range kb.Templates {
		fmt.Println("  template:", t)
	}

	// Online: digest the paper's Table 2 — the 16 messages of 2010-01-10.
	t0 := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	var live []syslogdigest.Message
	live = append(live, flapEpisode(t0)...)
	live = append(live, flapEpisode(t0.Add(20*time.Second))...)
	for i := range live {
		live[i].Index = uint64(i + 1) // m1..m16
	}

	d, err := syslogdigest.NewDigester(kb)
	if err != nil {
		log.Fatal(err)
	}
	res, err := d.Digest(live)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d raw messages -> %d network event(s):\n", len(live), len(res.Events))
	for _, e := range res.Events {
		fmt.Println("  " + e.Digest())
		fmt.Printf("  raw message indices: %v\n", e.RawIndexes)
	}
	if len(res.Events) == 1 && strings.Contains(res.Events[0].Label, "link flap") {
		fmt.Println("\nthe flapping link is reported as a single prioritized event, as in the paper's §3.")
	}
}
