// ispmonitor: the dataset-A workflow of the paper's evaluation — learn
// domain knowledge offline from historical ISP-backbone syslog, then run the
// online digester over fresh traffic and present the prioritized event list
// a network operator would watch.
//
// The traffic comes from the repository's network simulator (the substitute
// for the paper's proprietary tier-1 ISP feed); a downstream user would
// instead feed their own syslog files through syslogdigest.ReadMessages.
//
// Run with: go run ./examples/ispmonitor
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"syslogdigest"
	"syslogdigest/internal/gen"
)

func main() {
	// Historical period (offline learning) and a fresh day (online).
	history, err := gen.Generate(gen.Spec{
		Kind: gen.DatasetA, Routers: 30, Seed: 11,
		Start:    time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC),
		Duration: 3 * 24 * time.Hour, RateScale: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	today, err := gen.Generate(gen.Spec{
		Kind: gen.DatasetA, Routers: 30, Seed: 12,
		Start:    time.Date(2009, 12, 1, 0, 0, 0, 0, time.UTC),
		Duration: 24 * time.Hour, RateScale: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	params := syslogdigest.DefaultParams()
	params.CalibrateTemporal = true // derive alpha/beta from the history
	kb, err := syslogdigest.NewLearner(params).Learn(history.Messages, history.Net.Configs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: learned %d templates, %d rules from %d historical messages\n",
		len(kb.Templates), kb.RuleBase.Len(), len(history.Messages))
	fmt.Printf("offline: calibrated temporal parameters alpha=%g beta=%g\n\n",
		kb.Params.Temporal.Alpha, kb.Params.Temporal.Beta)

	// Online: stream today's syslog through the digester. The Streamer
	// emits each event as soon as the engine's watermark proves no later
	// message can join it, so events arrive incrementally; the final Flush
	// closes whatever the end of the feed left open.
	d, err := syslogdigest.NewDigester(kb)
	if err != nil {
		log.Fatal(err)
	}
	st := syslogdigest.NewStreamer(d, 0)
	var events []syslogdigest.Event
	msgs := 0
	for _, m := range today.Messages {
		res, err := st.Push(m)
		if err != nil {
			log.Fatal(err)
		}
		msgs++
		if res != nil {
			events = append(events, res.Events...)
		}
	}
	if res, err := st.Flush(); err != nil {
		log.Fatal(err)
	} else if res != nil {
		events = append(events, res.Events...)
	}

	fmt.Printf("online: %d messages -> %d events (compression ratio %.2e)\n\n",
		msgs, len(events), float64(len(events))/float64(msgs))

	fmt.Println("top 10 events of the day:")
	// Streamed events arrive in closure order; rank the union for the day
	// view.
	top := append([]syslogdigest.Event(nil), events...)
	sort.SliceStable(top, func(i, j int) bool { return top[i].Score > top[j].Score })
	for i, e := range top {
		if i == 10 {
			break
		}
		fmt.Printf("%2d. %s\n", i+1, e.Digest())
	}
}
