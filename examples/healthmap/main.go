// healthmap: the paper's §6.2 visualization comparison (Figures 14/15).
//
// Two network maps of the same 10-minute window: one sized by digested
// events, one by raw syslog message counts. The raw view overweights
// routers that merely log a lot (one flapping link produces hundreds of
// lines on both ends), while the events view shows how many distinct things
// actually happened — the paper's argument for visualizing events.
//
// Run with: go run ./examples/healthmap
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"syslogdigest"
	"syslogdigest/internal/gen"
)

func main() {
	history, err := gen.Generate(gen.Spec{
		Kind: gen.DatasetA, Routers: 30, Seed: 31,
		Start:    time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC),
		Duration: 2 * 24 * time.Hour, RateScale: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	day, err := gen.Generate(gen.Spec{
		Kind: gen.DatasetA, Routers: 30, Seed: 32,
		Start:    time.Date(2009, 12, 5, 0, 0, 0, 0, time.UTC),
		Duration: 24 * time.Hour, RateScale: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	kb, err := syslogdigest.NewLearner(syslogdigest.DefaultParams()).Learn(history.Messages, history.Net.Configs)
	if err != nil {
		log.Fatal(err)
	}

	// Pick the day's busiest 10-minute window.
	const window = 10 * time.Minute
	at, best := day.Messages[0].Time, 0
	j := 0
	for i := range day.Messages {
		if j < i {
			j = i
		}
		for j < len(day.Messages) && day.Messages[j].Time.Before(day.Messages[i].Time.Add(window)) {
			j++
		}
		if j-i > best {
			at, best = day.Messages[i].Time, j-i
		}
	}
	var batch []syslogdigest.Message
	for _, m := range day.Messages {
		if !m.Time.Before(at) && m.Time.Before(at.Add(window)) {
			batch = append(batch, m)
		}
	}

	d, err := syslogdigest.NewDigester(kb)
	if err != nil {
		log.Fatal(err)
	}
	res, err := d.Digest(batch)
	if err != nil {
		log.Fatal(err)
	}

	msgs := map[string]int{}
	for _, m := range batch {
		msgs[m.Router]++
	}
	events := map[string]int{}
	labels := map[string][]string{}
	for _, e := range res.Events {
		for _, r := range e.Routers {
			events[r]++
			if len(labels[r]) < 3 {
				labels[r] = append(labels[r], e.Label)
			}
		}
	}
	routers := make([]string, 0, len(msgs))
	for r := range msgs {
		routers = append(routers, r)
	}
	sort.Slice(routers, func(i, j int) bool { return msgs[routers[i]] > msgs[routers[j]] })

	fmt.Printf("network health, %s — %s\n\n", at.Format("2006-01-02 15:04"), at.Add(window).Format("15:04"))
	fmt.Printf("%-8s | %-28s | %-34s | %s\n", "router", "raw syslog view (Fig. 15)", "events view (Fig. 14)", "what happened")
	for _, r := range routers {
		raw := strings.Repeat("#", cap20(msgs[r]/10+1))
		ev := strings.Repeat("O", cap20(events[r]))
		fmt.Printf("%-8s | %-28s | %-34s | %s\n", r, raw, ev, strings.Join(labels[r], "; "))
	}
	fmt.Printf("\n%d raw messages vs %d events in the window — sizing circles by messages would\n", len(batch), len(res.Events))
	fmt.Println("send the operator to the chattiest router, not the one with the most incidents.")
}

func cap20(n int) int {
	if n > 20 {
		return 20
	}
	if n < 0 {
		return 0
	}
	return n
}
