// weeklyops: the maintenance loop the paper's introduction motivates.
//
// Commercial tools need their parsers and message-relationship models
// "constantly updated to keep up with network changes" — a router OS
// upgrade introduces new formats, and unprogrammed issues fly under the
// radar. SyslogDigest's answer is periodic re-learning: weekly rule updates
// (conservative deletion) and template refresh with stable IDs.
//
// This example simulates six operational weeks. After week 3, an "OS
// upgrade" starts emitting a brand-new message format; the weekly refresh
// picks it up automatically — no parser was written.
//
// Run with: go run ./examples/weeklyops
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"syslogdigest"
	"syslogdigest/internal/gen"
)

func main() {
	const weekDur = 24 * time.Hour // scaled "week" of traffic
	start := time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC)

	// Week 1 bootstraps the knowledge base.
	week1, err := gen.Generate(gen.Spec{
		Kind: gen.DatasetA, Routers: 20, Seed: 61,
		Start: start, Duration: weekDur, RateScale: 0.4,
	})
	if err != nil {
		log.Fatal(err)
	}
	learner := syslogdigest.NewLearner(syslogdigest.DefaultParams())
	kb, err := learner.Learn(week1.Messages, week1.Net.Configs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("week 1: bootstrap — %d templates, %d rules\n", len(kb.Templates), kb.RuleBase.Len())

	for week := 2; week <= 6; week++ {
		ds, err := gen.Generate(gen.Spec{
			Kind: gen.DatasetA, Routers: 20, Seed: 61 + int64(week)*13,
			Start:    start.Add(time.Duration(week-1) * weekDur),
			Duration: weekDur, RateScale: 0.4,
		})
		if err != nil {
			log.Fatal(err)
		}
		msgs := ds.Messages
		// From week 4 on, upgraded routers emit a new message format.
		if week >= 4 {
			t0 := msgs[0].Time
			for i := 0; i < 60; i++ {
				msgs = append(msgs, syslogdigest.Message{
					Time:   t0.Add(time.Duration(i*19) * time.Minute),
					Router: "ar003",
					Code:   "IFMGR-4-STATEQUEUE",
					Detail: fmt.Sprintf("Interface state queue depth %d exceeded watermark on Serial1/%d/1:0", 50+i%40, i%4),
				})
			}
		}
		st, err := learner.Relearn(kb, msgs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("week %d: refresh — templates kept %d, new %d; rules total %d (+%d/-%d)\n",
			week, st.KeptTemplates, st.NewTemplates, st.Rules.Total, st.Rules.Added, st.Rules.Deleted)
		if week == 4 {
			for _, tpl := range kb.Templates {
				if strings.HasPrefix(tpl.Code, "IFMGR") {
					fmt.Printf("        picked up the upgrade's new format: %s\n", tpl)
				}
			}
		}
	}

	// The refreshed base digests the new format without anyone writing a
	// parser for it.
	d, err := syslogdigest.NewDigester(kb)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Date(2009, 12, 1, 0, 0, 0, 0, time.UTC)
	var live []syslogdigest.Message
	for i := 0; i < 12; i++ {
		live = append(live, syslogdigest.Message{
			Time:   t0.Add(time.Duration(i*45) * time.Second),
			Router: "ar003",
			Code:   "IFMGR-4-STATEQUEUE",
			Detail: fmt.Sprintf("Interface state queue depth %d exceeded watermark on Serial1/2/1:0", 60+i),
		})
	}
	res, err := d.Digest(live)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlive: %d new-format messages -> %d event(s):\n", len(live), len(res.Events))
	for _, e := range res.Events {
		fmt.Println("  " + e.Digest())
	}
}
