// livefeed: the full operational loop in one process — routers streaming
// syslog over the network to a collector (the paper's deployment model),
// with the online digester consuming the collected feed.
//
// A generated dataset-A day is replayed over real loopback UDP in RFC 3164
// framing; the collector parses the wire format back into messages, and
// micro-batches are digested into events as they accumulate.
//
// Run with: go run ./examples/livefeed
package main

import (
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"syslogdigest"
	"syslogdigest/internal/collector"
	"syslogdigest/internal/gen"
	"syslogdigest/internal/syslogmsg"
)

func main() {
	// Learn offline from history, as usual.
	history, err := gen.Generate(gen.Spec{
		Kind: gen.DatasetA, Routers: 20, Seed: 41,
		Start:    time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC),
		Duration: 2 * 24 * time.Hour, RateScale: 0.4,
	})
	if err != nil {
		log.Fatal(err)
	}
	kb, err := syslogdigest.NewLearner(syslogdigest.DefaultParams()).Learn(history.Messages, history.Net.Configs)
	if err != nil {
		log.Fatal(err)
	}
	d, err := syslogdigest.NewDigester(kb)
	if err != nil {
		log.Fatal(err)
	}

	// Start the collector on an ephemeral loopback UDP port.
	var (
		mu    sync.Mutex
		batch []syslogdigest.Message
	)
	col, err := collector.New(collector.Config{UDPAddr: "127.0.0.1:0", Year: 2009},
		func(m syslogmsg.Message) {
			mu.Lock()
			batch = append(batch, m)
			mu.Unlock()
		})
	if err != nil {
		log.Fatal(err)
	}
	if err := col.Start(); err != nil {
		log.Fatal(err)
	}
	defer col.Close()
	fmt.Println("collector listening on", col.UDPAddr())

	// Replay a fresh hour of traffic over the wire in RFC 3164 framing —
	// exactly what a router's "logging host" configuration would send.
	day, err := gen.Generate(gen.Spec{
		Kind: gen.DatasetA, Routers: 20, Seed: 43,
		Start:    time.Date(2009, 12, 1, 0, 0, 0, 0, time.UTC),
		Duration: 6 * time.Hour, RateScale: 0.4,
	})
	if err != nil {
		log.Fatal(err)
	}
	conn, err := net.Dial("udp", col.UDPAddr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	sent := 0
	for i := range day.Messages {
		wire := syslogmsg.FormatRFC3164(&day.Messages[i], 189)
		if _, err := conn.Write([]byte(wire)); err != nil {
			log.Fatal(err)
		}
		sent++
		if sent%64 == 0 {
			time.Sleep(time.Millisecond) // pace loopback bursts
		}
	}

	// Wait for the datagrams to drain, then digest the collected batch.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if int(col.Stats().Received)+int(col.Stats().Dropped) >= sent {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := col.Stats()
	fmt.Printf("sent %d datagrams; collector received %d, dropped %d\n", sent, st.Received, st.Dropped)

	mu.Lock()
	collected := batch
	batch = nil
	mu.Unlock()
	sort.SliceStable(collected, func(i, j int) bool {
		return syslogmsg.SortByTime(&collected[i], &collected[j])
	})
	res, err := d.Digest(collected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d collected messages -> %d events; top 5:\n", len(collected), len(res.Events))
	for i, e := range res.Events {
		if i == 5 {
			break
		}
		fmt.Printf("%2d. %s\n", i+1, e.Digest())
	}
}
