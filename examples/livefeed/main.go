// livefeed: the full operational loop in one process — routers streaming
// syslog over the network to a collector (the paper's deployment model),
// with the online digester consuming the collected feed through two-tier
// emission.
//
// A generated dataset-A stretch is replayed over real loopback UDP in RFC
// 3164 framing; the collector parses the wire format back into messages and
// pushes each one straight into the streaming engine. With a provisional
// horizon set, every group prints a first signal seconds of log time after
// its birth, is folded into its absorbing event on a merge, and flips to
// final at closure — the live view an operator watches, hours before the
// exact closure rule could speak.
//
// Run with: go run ./examples/livefeed
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"syslogdigest"
	"syslogdigest/internal/collector"
	"syslogdigest/internal/gen"
	"syslogdigest/internal/syslogmsg"
)

func main() {
	// Learn offline from history, as usual.
	history, err := gen.Generate(gen.Spec{
		Kind: gen.DatasetA, Routers: 20, Seed: 41,
		Start:    time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC),
		Duration: 2 * 24 * time.Hour, RateScale: 0.4,
	})
	if err != nil {
		log.Fatal(err)
	}
	kb, err := syslogdigest.NewLearner(syslogdigest.DefaultParams()).Learn(history.Messages, history.Net.Configs)
	if err != nil {
		log.Fatal(err)
	}
	d, err := syslogdigest.NewDigester(kb)
	if err != nil {
		log.Fatal(err)
	}

	// The streaming front-end with the provisional tier on: first signal 30
	// seconds (log time) after a group is born, against the hours-scale
	// closure horizon the final tier needs.
	st := syslogdigest.NewStreamerWith(d, syslogdigest.StreamerOptions{
		ProvisionalHorizon: 30 * time.Second,
	})
	defer st.Close()

	var counts [4]int
	show := func(res *syslogdigest.DigestResult) {
		if res == nil {
			return
		}
		for i := range res.Updates {
			u := &res.Updates[i]
			counts[u.Status]++
			// Print first signals and resolutions; skip per-message
			// revisions to keep the feed readable.
			if u.Status != syslogdigest.StatusRevised {
				fmt.Println(u.Digest())
			}
		}
	}

	// Start the collector on an ephemeral loopback UDP port, feeding the
	// streamer directly — no batching anywhere.
	var mu sync.Mutex
	col, err := collector.New(collector.Config{UDPAddr: "127.0.0.1:0", Year: 2009},
		func(m syslogmsg.Message) {
			mu.Lock()
			defer mu.Unlock()
			res, err := st.Push(m)
			if err != nil {
				log.Println("stream:", err)
			}
			show(res)
		})
	if err != nil {
		log.Fatal(err)
	}
	if err := col.Start(); err != nil {
		log.Fatal(err)
	}
	defer col.Close()
	fmt.Println("collector listening on", col.UDPAddr())

	// Replay a fresh stretch of traffic over the wire in RFC 3164 framing —
	// exactly what a router's "logging host" configuration would send.
	day, err := gen.Generate(gen.Spec{
		Kind: gen.DatasetA, Routers: 20, Seed: 43,
		Start:    time.Date(2009, 12, 1, 0, 0, 0, 0, time.UTC),
		Duration: 6 * time.Hour, RateScale: 0.4,
	})
	if err != nil {
		log.Fatal(err)
	}
	conn, err := net.Dial("udp", col.UDPAddr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	sent := 0
	for i := range day.Messages {
		wire := syslogmsg.FormatRFC3164(&day.Messages[i], 189)
		if _, err := conn.Write([]byte(wire)); err != nil {
			log.Fatal(err)
		}
		sent++
		if sent%64 == 0 {
			time.Sleep(time.Millisecond) // pace loopback bursts
		}
	}

	// Wait for the datagrams to drain, then flush: open groups force-close
	// and every surviving identity resolves to final.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if int(col.Stats().Received)+int(col.Stats().Dropped) >= sent {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	cst := col.Stats()
	fmt.Printf("sent %d datagrams; collector received %d, dropped %d\n", sent, cst.Received, cst.Dropped)

	mu.Lock()
	res, err := st.Flush()
	if err != nil {
		log.Fatal(err)
	}
	show(res)
	mu.Unlock()

	fmt.Printf("\ntwo-tier books: %d provisional, %d revised, %d superseded, %d final\n",
		counts[syslogdigest.StatusProvisional], counts[syslogdigest.StatusRevised],
		counts[syslogdigest.StatusSuperseded], counts[syslogdigest.StatusFinal])
}
