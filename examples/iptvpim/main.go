// iptvpim: the paper's §6.1 troubleshooting walkthrough.
//
// In the IPTV backbone, live streams ride PIM multicast; each pair of
// multicast-tree neighbors is protected by a fast-reroute secondary path, so
// a PIM neighbor session should only drop on a DUAL failure. The paper
// describes an intriguing incident: the secondary path had silently failed
// and was retrying every five minutes, so when the primary link later went
// down the PIM session dropped — and SyslogDigest pulled the whole story
// (retries hours earlier, link failure, PIM loss, hop-router churn) into ONE
// event spanning multiple routers, layers, and protocols.
//
// This example injects exactly that scenario into the simulator and shows
// the digested event an operator would start from.
//
// Run with: go run ./examples/iptvpim
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"syslogdigest"
	"syslogdigest/internal/gen"
)

func main() {
	hist := gen.Spec{
		Kind: gen.DatasetB, Routers: 24, Seed: 21,
		Start:    time.Date(2009, 9, 1, 0, 0, 0, 0, time.UTC),
		Duration: 3 * 24 * time.Hour, RateScale: 0.5,
	}
	// PIM incidents are rare but must appear in history often enough for
	// their co-occurrence rules to clear the support threshold (the paper
	// learns on three months; this example compresses that into days).
	hist.Rates.PIMFailure = 4
	history, err := gen.Generate(hist)
	if err != nil {
		log.Fatal(err)
	}
	// The incident day: force a PIM dual-failure into the mix.
	spec := gen.Spec{
		Kind: gen.DatasetB, Routers: 24, Seed: 26,
		Start:    time.Date(2009, 12, 5, 0, 0, 0, 0, time.UTC),
		Duration: 24 * time.Hour, RateScale: 0.5,
	}
	spec.Rates.PIMFailure = 3
	day, err := gen.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}

	kb, err := syslogdigest.NewLearner(syslogdigest.DefaultParams()).Learn(history.Messages, history.Net.Configs)
	if err != nil {
		log.Fatal(err)
	}
	d, err := syslogdigest.NewDigester(kb)
	if err != nil {
		log.Fatal(err)
	}
	res, err := d.Digest(day.Messages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("digested %d messages into %d events\n\n", len(day.Messages), len(res.Events))

	// Find the PIM neighbor loss event.
	var pim *syslogdigest.Event
	for i := range res.Events {
		if strings.Contains(res.Events[i].Label, "pim neighbor") {
			pim = &res.Events[i]
			break
		}
	}
	if pim == nil {
		log.Fatal("no PIM event found (unexpected for this seed)")
	}

	fmt.Println("the PIM neighbor loss event, ranked", pim.ID+1, "of", len(res.Events), ":")
	fmt.Println("  " + pim.Digest())
	fmt.Printf("  spans %s across routers %v\n\n", pim.Span().Round(time.Second), pim.Routers)

	// Break the event down the way an operator would read it: which error
	// codes, on which routers, over what sub-spans. This is the cross-layer
	// story the paper describes operators reconstructing by hand.
	byIdx := make(map[uint64]*syslogdigest.Message)
	for i := range day.Messages {
		byIdx[day.Messages[i].Index] = &day.Messages[i]
	}
	type key struct{ router, code string }
	counts := make(map[key]int)
	first := make(map[key]time.Time)
	for _, idx := range pim.RawIndexes {
		m := byIdx[idx]
		k := key{m.Router, m.Code}
		counts[k]++
		if t, ok := first[k]; !ok || m.Time.Before(t) {
			first[k] = m.Time
		}
	}
	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return first[keys[i]].Before(first[keys[j]]) })
	fmt.Println("event anatomy (first occurrence, router, error code, count):")
	for _, k := range keys {
		fmt.Printf("  %s  %-7s %-42s x%d\n",
			first[k].Format("15:04:05"), k.router, k.code, counts[k])
	}

	fmt.Println("\nnote the five-minute tunnel retries starting hours before the PIM loss —")
	fmt.Println("the signature that told the paper's operators the secondary path was already dead.")
}
