package syslogdigest_test

import (
	"fmt"
	"log"
	"time"

	"syslogdigest"
)

// Example reproduces the paper's running example through the public API:
// learn from a history of link flaps, then digest the Table 2 messages —
// sixteen raw syslog lines collapse into one presented network event.
func Example() {
	const configR1 = `hostname r1
!
interface Serial1/0.10/10:0
 ip address 10.0.0.1 255.255.255.252
!
`
	const configR2 = `hostname r2
!
interface Serial1/0.20/20:0
 ip address 10.0.0.2 255.255.255.252
!
`
	r1, err := syslogdigest.ParseConfig(configR1)
	if err != nil {
		log.Fatal(err)
	}
	r2, err := syslogdigest.ParseConfig(configR2)
	if err != nil {
		log.Fatal(err)
	}

	flap := func(t time.Time) []syslogdigest.Message {
		m := func(off time.Duration, router, code, detail string) syslogdigest.Message {
			return syslogdigest.Message{Time: t.Add(off), Router: router, Code: code, Detail: detail}
		}
		return []syslogdigest.Message{
			m(0, "r1", "LINK-3-UPDOWN", "Interface Serial1/0.10/10:0, changed state to down"),
			m(0, "r2", "LINK-3-UPDOWN", "Interface Serial1/0.20/20:0, changed state to down"),
			m(time.Second, "r1", "LINEPROTO-5-UPDOWN", "Line protocol on Interface Serial1/0.10/10:0, changed state to down"),
			m(time.Second, "r2", "LINEPROTO-5-UPDOWN", "Line protocol on Interface Serial1/0.20/20:0, changed state to down"),
			m(10*time.Second, "r1", "LINK-3-UPDOWN", "Interface Serial1/0.10/10:0, changed state to up"),
			m(10*time.Second, "r2", "LINK-3-UPDOWN", "Interface Serial1/0.20/20:0, changed state to up"),
			m(11*time.Second, "r1", "LINEPROTO-5-UPDOWN", "Line protocol on Interface Serial1/0.10/10:0, changed state to up"),
			m(11*time.Second, "r2", "LINEPROTO-5-UPDOWN", "Line protocol on Interface Serial1/0.20/20:0, changed state to up"),
		}
	}

	// Offline: sixty historical flap episodes teach templates, rules, and
	// temporal patterns.
	var history []syslogdigest.Message
	base := time.Date(2009, 11, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 60; i++ {
		history = append(history, flap(base.Add(time.Duration(i)*4*time.Hour))...)
	}
	params := syslogdigest.DefaultParams()
	params.Rules.SPmin = 0.01
	kb, err := syslogdigest.NewLearner(params).Learn(history, []*syslogdigest.RouterConfig{r1, r2})
	if err != nil {
		log.Fatal(err)
	}

	// Online: the paper's Table 2 — two flap cycles on 2010-01-10.
	t0 := time.Date(2010, 1, 10, 0, 0, 0, 0, time.UTC)
	live := append(flap(t0), flap(t0.Add(20*time.Second))...)
	for i := range live {
		live[i].Index = uint64(i + 1)
	}
	d, err := syslogdigest.NewDigester(kb)
	if err != nil {
		log.Fatal(err)
	}
	res, err := d.Digest(live)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range res.Events {
		fmt.Println(e.Digest())
	}
	// Output:
	// 2010-01-10 00:00:00|2010-01-10 00:00:31|r1 Serial1/0.10/10:0 r2 Serial1/0.20/20:0|line protocol flap, link flap|16 msgs
}
