// Package syslogdigest is a from-scratch reproduction of "What Happened in
// my Network? Mining Network Events from Router Syslogs" (Qiu, Ge, Pei,
// Wang, Xu — IMC 2010).
//
// SyslogDigest transforms massive, minimally-structured router syslog
// streams into a small number of prioritized network events. It learns its
// domain knowledge from data: message templates mined from historical
// syslog, a location dictionary built from router configs, temporal
// (interarrival) patterns per template, and pairwise association rules
// between templates. Online, incoming messages are augmented with template
// and location, grouped by three passes (temporal, rule-based,
// cross-router), scored, labeled, and presented one line per event.
//
// # Quick start
//
//	params := syslogdigest.DefaultParams()
//	kb, err := syslogdigest.NewLearner(params).Learn(history, configs)
//	if err != nil { ... }
//	d, err := syslogdigest.NewDigester(kb)
//	if err != nil { ... }
//	res, err := d.Digest(liveMessages)
//	for _, e := range res.Events {
//	    fmt.Println(e.Digest())
//	}
//
// The types below are aliases into the implementation packages so that the
// whole pipeline is usable through this single import.
package syslogdigest

import (
	"io"

	"syslogdigest/internal/checkpoint"
	"syslogdigest/internal/core"
	"syslogdigest/internal/event"
	"syslogdigest/internal/netconf"
	"syslogdigest/internal/syslogmsg"
	"syslogdigest/internal/template"
)

// Core pipeline types.
type (
	// Message is one raw router syslog message.
	Message = syslogmsg.Message
	// PlusMessage is a message augmented with template and location.
	PlusMessage = core.PlusMessage
	// Event is one prioritized network event.
	Event = event.Event
	// Update is one tier-tagged record of the two-tier emission stream:
	// provisional, revised, superseded, or final (see
	// Params.ProvisionalHorizon and StreamerOptions.ProvisionalHorizon).
	Update = event.Update
	// Status is the tier of one Update.
	Status = event.Status
	// Params bundles all pipeline tunables (Table 6 of the paper).
	Params = core.Params
	// KnowledgeBase is the offline learning output.
	KnowledgeBase = core.KnowledgeBase
	// Learner runs offline domain knowledge learning.
	Learner = core.Learner
	// Digester runs online digesting over a knowledge base.
	Digester = core.Digester
	// Streamer adapts the digester to a continuous feed: a bounded reorder
	// buffer in front of the incremental engine, emitting each event as
	// soon as the watermark proves it complete.
	Streamer = core.Streamer
	// StreamerOptions tune the streaming front-end (reorder tolerance and
	// cap, temporal-state bound).
	StreamerOptions = core.StreamerOptions
	// DigestResult is one batch's events plus bookkeeping.
	DigestResult = core.DigestResult
	// Stage selects how much of the grouping pipeline runs.
	Stage = core.Stage
	// RouterConfig is one parsed router configuration.
	RouterConfig = netconf.Config
	// Template is one learned message template.
	Template = template.Template
)

// Grouping stages, for the staged (Table 7) ablation.
const (
	StageTemporal      = core.StageTemporal
	StageTemporalRules = core.StageTemporalRules
	StageFull          = core.StageFull
)

// Update tiers (see Update.Status).
const (
	StatusProvisional = event.StatusProvisional
	StatusRevised     = event.StatusRevised
	StatusSuperseded  = event.StatusSuperseded
	StatusFinal       = event.StatusFinal
)

// DefaultParams returns the paper's Table 6 configuration for dataset A;
// dataset B differs only in the rule window (40s) and alpha (0.075).
func DefaultParams() Params { return core.DefaultParams() }

// NewLearner builds an offline learner.
func NewLearner(params Params) *Learner { return core.NewLearner(params) }

// NewDigester builds an online digester over a learned knowledge base.
func NewDigester(kb *KnowledgeBase) (*Digester, error) { return core.NewDigester(kb) }

// NewStreamer wraps a digester for continuous feeds with default options;
// maxBuffer (<= 0 for the default) caps the reorder buffer.
func NewStreamer(d *Digester, maxBuffer int) *Streamer { return core.NewStreamer(d, maxBuffer) }

// NewStreamerWith wraps a digester for continuous feeds with explicit
// options.
func NewStreamerWith(d *Digester, opts StreamerOptions) *Streamer {
	return core.NewStreamerWith(d, opts)
}

// RestoreStreamer rebuilds a streamer over d from a Streamer.Snapshot
// taken by an earlier run (same knowledge base required). opts are the
// restored run's own tuning — the worker count may differ from the
// snapshotted run's; the engine reshards. The restored streamer resumes
// mid-stream, emitting each event exactly once across the restart.
func RestoreStreamer(d *Digester, snap []byte, opts StreamerOptions) (*Streamer, error) {
	return core.RestoreStreamer(d, snap, opts)
}

// WriteCheckpoint atomically writes a snapshot to path (temp file + rename:
// a crash mid-write never corrupts the previous checkpoint).
func WriteCheckpoint(path string, snap []byte) error { return checkpoint.WriteFile(path, snap) }

// ReadCheckpoint reads a snapshot written by WriteCheckpoint.
func ReadCheckpoint(path string) ([]byte, error) { return checkpoint.ReadFile(path) }

// LoadKnowledgeBase reads a knowledge base saved with KnowledgeBase.Save.
func LoadKnowledgeBase(r io.Reader) (*KnowledgeBase, error) { return core.LoadKnowledgeBase(r) }

// ParseConfig parses one router configuration in either supported vendor
// dialect.
func ParseConfig(text string) (*RouterConfig, error) { return netconf.Parse(text) }

// RenderConfig serializes a router configuration in its vendor's dialect.
func RenderConfig(c *RouterConfig) string { return netconf.Render(c) }

// ReadMessages reads a serialized syslog stream ("ts|router|code|detail"
// lines). Lenient: malformed lines are skipped, as an operational feed
// requires.
func ReadMessages(r io.Reader) ([]Message, error) {
	sr := syslogmsg.NewReader(r)
	sr.SetLenient(true)
	return sr.ReadAll()
}

// WriteMessages writes messages in the serialized line format.
func WriteMessages(w io.Writer, msgs []Message) error {
	return syslogmsg.WriteAll(w, msgs)
}
